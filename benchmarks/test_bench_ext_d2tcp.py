"""Extension — D²TCP's deadline awareness (related work [15]).

Competing transfers with staggered deadlines share one bottleneck.
DCTCP back-offs are deadline-blind, so urgent and patient flows finish
in arrival order; D²TCP's gamma-corrected back-off shifts bandwidth to
near-deadline flows and misses fewer deadlines — the comparison the
paper cites when positioning TCP-TRIM against deadline-aware work.
"""

from benchmarks.paperbench import MS, header, row, run_once
from repro.net.topology import build_star
from repro.sim.kernel import Simulator
from repro.tcp.base import TcpSink
from repro.tcp.d2tcp import D2tcpSource
from repro.tcp.dctcp import DctcpSource
from repro.tcp.factory import default_config

N_FLOWS = 8
SEGMENTS = 400
FAST = dict(min_rto=0.01, initial_rto=0.01)


def run_protocol(deadline_aware: bool):
    sim = Simulator()
    star = build_star(sim, N_FLOWS, frontend_bandwidth_bps=500e6,
                      ecn_threshold_pkts=17)
    config = default_config("d2tcp", **FAST)
    # Deadlines tighten with flow index: flow 0 has lots of slack, the
    # last flow barely enough for its fair share.
    fair_time = N_FLOWS * SEGMENTS * 1460 * 8 / 500e6
    deadlines = [
        0.013 + fair_time * (1.6 - 1.1 * i / (N_FLOWS - 1))
        for i in range(N_FLOWS)
    ]
    flows = []
    for i, server in enumerate(star.servers):
        if deadline_aware:
            source = D2tcpSource(
                sim, server, flow_id=i + 1, dst_id=star.frontend.node_id,
                config=config, deadline=deadlines[i],
            )
        else:
            source = DctcpSource(
                sim, server, flow_id=i + 1, dst_id=star.frontend.node_id,
                config=config,
            )
        TcpSink(sim, star.frontend, flow_id=i + 1)
        message = source.send_message(SEGMENTS)
        flows.append((message, deadlines[i]))
    sim.run(until=5.0)
    missed = sum(
        1
        for message, deadline in flows
        if message.finish_time is None or message.finish_time > deadline
    )
    lateness = [
        max(0.0, message.finish_time - deadline)
        for message, deadline in flows
        if message.finish_time is not None
    ]
    return {
        "missed": missed,
        "worst_lateness": max(lateness) if lateness else float("inf"),
        "all_done": all(m.finish_time is not None for m, _ in flows),
    }


def test_ext_d2tcp_deadlines(benchmark):
    results = run_once(
        benchmark,
        lambda: {
            "dctcp": run_protocol(deadline_aware=False),
            "d2tcp": run_protocol(deadline_aware=True),
        },
    )

    header("Extension: staggered deadlines on a shared bottleneck")
    for name, r in results.items():
        row(f"{name:6s}  missed={r['missed']}/{N_FLOWS}  "
            f"worst lateness={r['worst_lateness'] * MS:7.2f} ms")

    assert results["dctcp"]["all_done"] and results["d2tcp"]["all_done"]
    # Deadline awareness strictly reduces misses (or achieves zero).
    assert results["d2tcp"]["missed"] <= results["dctcp"]["missed"]
    assert results["d2tcp"]["worst_lateness"] <= (
        results["dctcp"]["worst_lateness"] + 1e-9
    )
