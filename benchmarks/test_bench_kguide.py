"""Ablation — sweeping the back-off threshold K around Equation (22).

The guideline claims the Eq. 22 K is the smallest threshold that keeps
the bottleneck fully utilized.  We sweep multiples of it on the fluid
model (queue head-room) and on the simulator (goodput and queue), and
confirm the trade-off: K below the guideline costs utilization, K above
it only adds queueing.
"""

from benchmarks.paperbench import header, row, run_once
from repro.core import kguide
from repro.core.model import SteadyStateModel
from repro.experiments.properties import PropertiesParams, run_properties_case

C = 1e9 / (8 * 1460)
D = 1e-3
MULTIPLIERS = (0.6, 0.8, 1.0, 1.5, 2.0)


def test_kguide_model_sweep(benchmark):
    def sweep():
        k_star = kguide.k_threshold(C, D)
        out = []
        for mult in MULTIPLIERS:
            k = max(D, k_star * mult)
            trace = SteadyStateModel(C, D, 10, k).run(300)
            out.append((mult, k, trace))
        return out

    traces = run_once(benchmark, sweep)

    header("K guideline (fluid model, N=10): queue head-room vs K")
    for mult, k, trace in traces:
        row(f"K={mult:3.1f}x Eq.22 ({k * 1e6:7.0f} us)  min_queue={trace.min_queue:7.1f}  "
            f"max_queue={trace.max_queue:7.1f}  util_ok={trace.utilization_ok}")

    at_guideline = next(t for m, _, t in traces if m == 1.0)
    assert at_guideline.utilization_ok
    # Larger K only grows the standing queue.
    queues = [t.min_queue for m, _, t in traces]
    assert queues == sorted(queues)


def test_kguide_simulator_sweep(benchmark):
    """Simulator cross-check: utilization near-full at the guideline K."""

    def run():
        params = PropertiesParams.quick("trim", end_time=0.4)
        return run_properties_case(params, n_trains=5)

    case = run_once(benchmark, run)
    header("K guideline (simulator, 5 trains at Eq. 22 K)")
    row(f"goodput={case.goodput_bps / 1e6:7.1f} Mbps ({case.utilization:.1%})  "
        f"AQL={case.average_queue_pkts:5.1f} pkt  drops={case.dropped_packets}")
    assert case.utilization > 0.9
    assert case.dropped_packets == 0
