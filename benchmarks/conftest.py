"""Benchmark-suite configuration.

Each benchmark runs one experiment at the ``quick`` preset exactly once
(`benchmark.pedantic(rounds=1)`): the interesting output is the
paper-style table the bench prints, and the wall time pytest-benchmark
records for regenerating it — not statistical timing of a hot loop.
"""

import sys
from pathlib import Path

# Make `src` and the benchmarks package importable regardless of how
# pytest was invoked (the repo installs via a .pth in CI-less setups).
ROOT = Path(__file__).parent.parent
for path in (ROOT / "src", ROOT):
    if str(path) not in sys.path:
        sys.path.insert(0, str(path))
