"""Figure 13(b)–(e) — the web-service scenario on the testbed substitute.

Four servers send thousands of Fig. 2-distributed responses over 1 Gbps
links.  The paper scatter-plots the 64–256 KB samples: under CUBIC and
Reno many exceed 50 ms and some reach ~250 ms (one RTO), while under
TCP-TRIM no sample exceeds 25 ms; the full CDF has ~99% of TRIM
responses under 25 ms.
"""

from benchmarks.paperbench import MS, header, row, run_once
from repro.experiments.testbed import WebServiceParams, run_web_service

PROTOCOLS = ("cubic", "reno", "trim")


def test_fig13be_web_service(benchmark):
    def sweep():
        return {
            protocol: run_web_service(WebServiceParams.quick(protocol))
            for protocol in PROTOCOLS
        }

    results = run_once(benchmark, sweep)

    header("Fig. 13(b)-(e): response completion times (quick preset)")
    for protocol, r in results.items():
        row(f"{protocol:5s}  ARCT={r.arct * MS:7.2f} ms  p99={r.p99 * MS:7.2f} ms  "
            f"64-256KB max={r.band_max * MS:7.2f} ms  "
            f"<25ms={r.fraction_under_threshold:6.1%}  timeouts={r.timeouts}")

    trim = results["trim"]
    # Fig. 13(d): no TRIM sample in the 64-256 KB band exceeds 25 ms.
    assert trim.band_max <= 25e-3 * 1.2
    # Fig. 13(e): ~99% of all TRIM responses complete under 25 ms.
    assert trim.fraction_under_threshold > 0.95
    assert trim.timeouts == 0
    # The baselines show the paper's heavy tails (>=50 ms samples).
    for baseline in ("cubic", "reno"):
        assert results[baseline].band_max > 50e-3
        assert results[baseline].arct > trim.arct
