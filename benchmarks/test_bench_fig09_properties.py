"""Figure 9 — TCP-TRIM's basic properties.

(a) queue trace with 5 long trains: TCP saw-tooths against the buffer
ceiling; TRIM holds a small stable queue.  (b) average queue length
rises with the train count but stays far below TCP's.  (c) TRIM drops
nothing.  (d) goodput stays near full utilization (paper: ~98%).
"""

from benchmarks.paperbench import header, row, run_once
from repro.experiments.properties import (
    PropertiesParams,
    run_properties_sweep,
    run_queue_trace,
)

COUNTS = (2, 4, 6, 8, 10)


def test_fig09_properties(benchmark):
    def full():
        out = {}
        for protocol in ("reno", "trim"):
            params = PropertiesParams.quick(protocol)
            out[protocol] = {
                "trace": run_queue_trace(params, n_trains=5),
                "sweep": run_properties_sweep(params, counts=COUNTS),
            }
        return out

    results = run_once(benchmark, full)

    header("Fig. 9(a): queue with 5 LPTs")
    for protocol in ("reno", "trim"):
        trace = results[protocol]["trace"]
        row(f"{protocol:5s}  mean={trace.mean():6.1f} pkt  peak={trace.max():5.0f} pkt")

    header("Fig. 9(b)-(d): AQL / drops / goodput vs concurrent trains")
    for reno, trim in zip(results["reno"]["sweep"], results["trim"]["sweep"]):
        row(f"n={reno.n_trains:2d}  "
            f"AQL tcp={reno.average_queue_pkts:6.1f} trim={trim.average_queue_pkts:6.1f}  "
            f"drops tcp={reno.dropped_packets:5d} trim={trim.dropped_packets:3d}  "
            f"util tcp={reno.utilization:6.1%} trim={trim.utilization:6.1%}")

    reno_trace = results["reno"]["trace"]
    trim_trace = results["trim"]["trace"]
    assert reno_trace.max() >= 99  # saw-tooth touches the 100-pkt buffer
    assert trim_trace.max() < 50  # small and stable

    for reno, trim in zip(results["reno"]["sweep"], results["trim"]["sweep"]):
        assert trim.average_queue_pkts < reno.average_queue_pkts
        assert trim.dropped_packets == 0
        assert trim.utilization > 0.9  # paper: ~98%
    # AQL rises with concurrency for both (paper's observed trend).
    trim_aqls = [c.average_queue_pkts for c in results["trim"]["sweep"]]
    assert trim_aqls[-1] > trim_aqls[0]
