"""Figure 13(a) — testbed ARCT versus mean response size.

Two background file transfers share a 100 Mbps bottleneck with a server
sending 100 responses (mean size swept 32 KB → 1 MB, ±10%).  The paper:
ARCT grows with size under both CUBIC and TCP-TRIM, but TRIM's trend is
gentler and TRIM wins in every case.  Our simulation substitute (see
DESIGN.md) reproduces the gentler-trend and endpoint wins; the 128 KB
midpoint is within noise of parity (recorded in EXPERIMENTS.md).
"""

from benchmarks.paperbench import MS, header, row, run_once
from repro.experiments.testbed import ArctParams, run_arct_sweep


def test_fig13a_arct(benchmark):
    def both():
        return {
            protocol: run_arct_sweep(ArctParams.quick(protocol))
            for protocol in ("cubic", "trim")
        }

    results = run_once(benchmark, both)

    header("Fig. 13(a): ARCT vs mean response size (100 Mbps testbed substitute)")
    for cubic, trim in zip(results["cubic"], results["trim"]):
        row(f"size={cubic.mean_size_bytes // 1024:5d} KB  "
            f"CUBIC={cubic.arct * MS:8.2f} ms (max {cubic.max_ct * MS:7.1f})  "
            f"TRIM={trim.arct * MS:8.2f} ms (max {trim.max_ct * MS:7.1f})")

    cubic_cases = results["cubic"]
    trim_cases = results["trim"]
    # TRIM's ARCT trend is gentler: smaller max/min ratio over the sweep.
    # (Guard against tiny denominators with an absolute floor.)
    # TRIM avoids RTOs entirely.
    assert all(c.timeouts == 0 for c in trim_cases)
    # TRIM wins at the smallest size (the paper's first case) and its
    # completion-time tail is tighter at every size.
    assert trim_cases[0].arct < cubic_cases[0].arct
    assert all(t.max_ct < c.max_ct for t, c in zip(trim_cases, cubic_cases))
