"""Figure 6 — TCP-TRIM on the impairment scenario.

The paper observes: a single throughput spike at 0.5 s, no timeouts,
the queue never exceeds ~20 packets, every window stays small before
0.5 s, plummets to 2 at the long train, is re-inherited via the probe,
and every transfer completes before 0.6 s.
"""

from benchmarks.paperbench import MS, header, row, run_once
from repro.experiments.motivation import MotivationParams, run_motivation


def test_fig06_trim_impairment(benchmark):
    result = run_once(
        benchmark, lambda: run_motivation(MotivationParams.quick("trim"))
    )

    header("Fig. 6: TCP-TRIM on the motivation scenario")
    row(f"timeouts per connection: {result.timeouts_per_connection} (paper: none)")
    row(f"dropped packets: {result.dropped_packets} (paper: none)")
    row(f"peak queue: {result.peak_queue_pkts:.0f} pkts (paper: < 20)")
    row(f"inherited cwnd at 0.5 s: {[round(c) for c in result.inherited_cwnd]} "
        f"(windows held small by delay control)")
    row(f"LPT completion times (ms): "
        f"{[round(t * MS, 1) for t in result.lpt_completion_times]}")
    row(f"all transfers done at t = {result.all_done_time:.3f} s (paper: < 0.6 s)")

    assert result.total_timeouts == 0
    assert result.dropped_packets == 0
    assert result.peak_queue_pkts <= 25
    assert result.all_done_time < 0.65
