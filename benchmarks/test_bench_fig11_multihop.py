"""Figure 11 — multi-hop, multi-bottleneck throughput.

Groups A and B send long trains to the front-end; group C sends to
group D.  Both 10 Gbps trunks are 2:1 oversubscribed and group A
crosses both.  The paper (1 Gbps hosts): TRIM gives A/B/C about
342.7/638/318 Mbps while TCP manages 259/471/233 — TRIM wins every
group because it avoids the buffer overflows that stall TCP.  The quick
preset scales all rates by 10×.
"""

from benchmarks.paperbench import header, row, run_once
from repro.experiments.multihop import MultiHopParams, run_multihop


def test_fig11_multihop(benchmark):
    def both():
        return {
            protocol: run_multihop(MultiHopParams.quick(protocol))
            for protocol in ("reno", "trim")
        }

    results = run_once(benchmark, both)

    header("Fig. 11(b): per-sender throughput (Mbps, quick preset = paper/10)")
    for protocol, result in results.items():
        row(f"{protocol:5s}  A={result.mean('a') / 1e6:6.1f}  "
            f"B={result.mean('b') / 1e6:6.1f}  C={result.mean('c') / 1e6:6.1f}  "
            f"timeouts={result.timeouts}  drops={result.dropped_packets}")

    trim, reno = results["trim"], results["reno"]
    # Shape: TRIM avoids losses entirely and rescues the
    # both-bottleneck group A that TCP's overflows starve.
    assert trim.timeouts == 0 and trim.dropped_packets == 0
    assert reno.timeouts > 0
    assert trim.mean("a") > reno.mean("a")
    # B (one bottleneck) outruns A (two bottlenecks) under TRIM, as in
    # the paper's 638 vs 342.7.
    assert trim.mean("b") > trim.mean("a")
    # Both trunks stay near-full under TRIM (group_size senders each).
    trunk2_load = (trim.mean("a") + trim.mean("b")) * 10
    assert trunk2_load > 0.9 * 1e9  # quick preset trunk = 1 Gbps
