"""Figure 12 — mean and maximum completion times in the fat-tree.

Every server sends 1 MB (small 2–6 KB objects from 0.1 s, the big
remainder at 0.5 s) to a random sink over 10 Gbps links with 350 KB
buffers.  The paper compares TCP, DCTCP, L2DCT, and TCP-TRIM across
pods 4–10: TCP is always worst with sharply rising tails; TRIM is best
everywhere.  The quick preset uses pods 4 and 6 with 300 KB transfers.
"""

from benchmarks.paperbench import MS, header, row, run_once
from repro.experiments.fattree import FatTreeParams, run_fattree

PROTOCOLS = ("reno", "dctcp", "l2dct", "trim")
PODS = (4, 6)


def test_fig12_fattree_completion(benchmark):
    def sweep():
        # The paper's full 1 MB per server: pods 4 and 6 are already
        # congested enough at this load to separate the protocols.
        return {
            (protocol, k): run_fattree(
                FatTreeParams.quick(protocol, k=k, total_bytes=1_000_000)
            )
            for protocol in PROTOCOLS
            for k in PODS
        }

    results = run_once(benchmark, sweep)

    header("Fig. 12: big-transfer mean/max completion (ms)")
    for k in PODS:
        cells = []
        for protocol in PROTOCOLS:
            r = results[(protocol, k)]
            cells.append(
                f"{protocol}={r.big_mean_completion * MS:6.1f}/"
                f"{r.big_max_completion * MS:7.1f}"
            )
        row(f"pods={k}: " + "  ".join(cells))

    for k in PODS:
        trim = results[("trim", k)]
        reno = results[("reno", k)]
        # TRIM's tail never exceeds TCP's, and everyone finishes.
        assert trim.big_max_completion <= reno.big_max_completion
        assert trim.completed_servers == trim.n_servers
    # At the larger scale the gap is strict: TCP's mean and tail blow up.
    assert (
        results[("trim", 6)].big_mean_completion
        < results[("reno", 6)].big_mean_completion
    )
    assert (
        results[("trim", 6)].big_max_completion
        < results[("reno", 6)].big_max_completion
    )
