"""Table I — the number of timeouts in each protocol.

The paper counts RTO events across the Fig. 12 fat-tree runs:

    pods   TCP   DCTCP  L2DCT  TCP-TRIM
      4     13       9      9         8
      6     85      75     71        39
      8    452     440    274       141
     10   1738     859    493       285

TCP always suffers the most, DCTCP and L2DCT sit between, and TCP-TRIM
always the fewest (~80% fewer than TCP at pod 10).  The quick preset
reproduces the ordering at pods 4–6 with heavier per-server load to
induce congestion at small scale.
"""

from benchmarks.paperbench import header, row, run_once
from repro.experiments.fattree import FatTreeParams, run_fattree

PROTOCOLS = ("reno", "dctcp", "l2dct", "trim")
PODS = (4, 6)


def test_table1_timeout_counts(benchmark):
    def sweep():
        return {
            (protocol, k): run_fattree(
                FatTreeParams.quick(protocol, k=k, total_bytes=1_000_000)
            )
            for protocol in PROTOCOLS
            for k in PODS
        }

    results = run_once(benchmark, sweep)

    header("Table I: timeouts per protocol")
    row(f"{'pods':>5} " + "".join(f"{p:>8}" for p in PROTOCOLS))
    for k in PODS:
        counts = [results[(p, k)].total_timeouts for p in PROTOCOLS]
        row(f"{k:>5} " + "".join(f"{c:>8}" for c in counts))

    for k in PODS:
        tcp = results[("reno", k)].total_timeouts
        trim = results[("trim", k)].total_timeouts
        # TRIM strictly fewest; TCP most (ties allowed among the middle).
        assert trim <= min(results[(p, k)].total_timeouts for p in PROTOCOLS)
        assert tcp >= max(results[(p, k)].total_timeouts for p in PROTOCOLS)
    # The big-scale shape: TRIM cuts TCP's timeouts by a large factor.
    tcp6 = results[("reno", 6)].total_timeouts
    trim6 = results[("trim", 6)].total_timeouts
    assert tcp6 > 0
    assert trim6 <= tcp6 * 0.5
