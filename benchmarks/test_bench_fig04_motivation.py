"""Figure 4 — TCP Reno's throughput collapse under window inheritance.

The paper traces connection 5 of the five-server motivation scenario:
the congestion window reaches ~900 segments by 0.3 s, is inherited into
the 0.5 s long train, and the resulting burst causes two timeouts
(~0.5 s and ~0.7 s) and throughput collapse.
"""

from benchmarks.paperbench import MS, header, row, run_once
from repro.experiments.motivation import MotivationParams, run_motivation


def test_fig04_reno_collapse(benchmark):
    result = run_once(
        benchmark, lambda: run_motivation(MotivationParams.quick("reno"))
    )

    header("Fig. 4: TCP Reno on the motivation scenario")
    row(f"inherited cwnd at 0.5 s: {[round(c) for c in result.inherited_cwnd]} "
        f"(paper: >850 each)")
    row(f"timeouts per connection: {result.timeouts_per_connection} "
        f"(paper: 0/1/2/2/2)")
    row(f"dropped packets: {result.dropped_packets}")
    row(f"LPT completion times (ms): "
        f"{[round(t * MS, 1) for t in result.lpt_completion_times]}")
    row(f"all transfers done at t = {result.all_done_time:.3f} s "
        f"(RTO recovery pushes past 0.7 s, as in Fig. 4a)")

    # Shape: huge inherited windows, several timeouts, late completion.
    assert max(result.inherited_cwnd) > 200
    assert result.total_timeouts >= 4
    assert result.all_done_time > 0.7
