"""Tests for D²TCP (deadline-aware DCTCP)."""

import pytest

from repro.net.topology import build_star
from repro.sim.kernel import Simulator
from repro.tcp.base import TcpSink
from repro.tcp.d2tcp import D2tcpSource
from repro.tcp.factory import default_config, source_class
from tests.helpers import FAST, make_pair


def d2tcp_pair(deadline=None, **kwargs):
    config = default_config("d2tcp", **FAST)
    kwargs.setdefault("ecn_threshold", 17)
    kwargs.setdefault("frontend_bandwidth", 500e6)
    return make_pair("d2tcp", config=config, deadline=deadline, **kwargs)


class TestRegistration:
    def test_factory(self):
        assert source_class("d2tcp") is D2tcpSource

    def test_is_ecn_protocol(self):
        from repro.tcp.factory import ECN_PROTOCOLS

        assert "d2tcp" in ECN_PROTOCOLS

    def test_deadline_validation(self):
        with pytest.raises(ValueError):
            d2tcp_pair(deadline=-1.0)


class TestUrgency:
    def test_no_deadline_behaves_like_dctcp(self):
        _sim, _star, source, _sink = d2tcp_pair()
        assert source.urgency() == 1.0

    def test_late_flow_maxes_urgency(self):
        sim, _star, source, _sink = d2tcp_pair(deadline=0.001)
        source.send_message(1000)
        sim.run(until=0.01)  # already past the deadline, data remains
        if not source.all_acked:
            assert source.urgency() == D2tcpSource.D_MAX

    def test_urgency_clamped(self):
        sim, _star, source, _sink = d2tcp_pair(deadline=1000.0)
        source.send_message(100)
        sim.run(until=0.002)
        assert D2tcpSource.D_MIN <= source.urgency() <= D2tcpSource.D_MAX

    def test_completed_flow_neutral(self):
        sim, _star, source, _sink = d2tcp_pair(deadline=10.0)
        source.send_message(10)
        sim.run(until=0.5)
        assert source.urgency() == 1.0


class TestDeadlineAwareness:
    def test_transfer_completes(self):
        sim, _star, source, sink = d2tcp_pair(deadline=5.0)
        source.send_message(1000)
        sim.run(until=2.0)
        assert sink.next_expected == 1000
        assert source.stats.timeouts == 0

    def test_near_deadline_flow_beats_far_deadline_flow(self):
        """Two competing flows with asymmetric deadlines: the urgent one
        should finish first — D²TCP's whole purpose."""
        sim = Simulator()
        star = build_star(sim, 2, frontend_bandwidth_bps=500e6,
                          ecn_threshold_pkts=17)
        config = default_config("d2tcp", **FAST)
        urgent = D2tcpSource(
            sim, star.servers[0], flow_id=1, dst_id=star.frontend.node_id,
            config=config, deadline=0.05,
        )
        patient = D2tcpSource(
            sim, star.servers[1], flow_id=2, dst_id=star.frontend.node_id,
            config=config, deadline=10.0,
        )
        TcpSink(sim, star.frontend, flow_id=1)
        TcpSink(sim, star.frontend, flow_id=2)
        m_urgent = urgent.send_message(1500)
        m_patient = patient.send_message(1500)
        sim.run(until=2.0)
        assert m_urgent.finish_time is not None
        assert m_patient.finish_time is not None
        assert m_urgent.finish_time < m_patient.finish_time
