"""Unit tests for the RED queue."""

import pytest

from repro.net.packet import DATA, Packet
from repro.net.queues import RedQueue


def pkt(ecn=False, seq=0):
    return Packet(flow_id=1, src=0, dst=1, kind=DATA, seq=seq, ecn_capable=ecn)


def make_red(**overrides):
    defaults = dict(
        capacity_pkts=100, min_threshold=5, max_threshold=15,
        max_probability=0.1, seed=1,
    )
    defaults.update(overrides)
    return RedQueue(**defaults)


class TestValidation:
    def test_threshold_ordering(self):
        with pytest.raises(ValueError):
            make_red(min_threshold=15, max_threshold=5)
        with pytest.raises(ValueError):
            make_red(min_threshold=0, max_threshold=5)
        with pytest.raises(ValueError):
            make_red(max_threshold=200)

    def test_probability_range(self):
        with pytest.raises(ValueError):
            make_red(max_probability=0.0)
        with pytest.raises(ValueError):
            make_red(max_probability=1.5)

    def test_tx_time_positive(self):
        with pytest.raises(ValueError):
            make_red(mean_tx_time=0.0)


class TestBehaviour:
    def test_no_drops_below_min_threshold(self):
        q = make_red()
        for i in range(5):
            assert q.enqueue(pkt(seq=i))
        assert q.stats.dropped == 0

    def test_average_tracks_queue_slowly(self):
        q = make_red()
        for i in range(50):
            q.enqueue(pkt(seq=i))
        # EWMA with w=0.002 trails far behind the instantaneous length.
        assert 0 < q.avg < len(q)

    def test_sustained_overload_triggers_early_drops(self):
        q = make_red(capacity_pkts=1000, min_threshold=5, max_threshold=15)
        dropped_before_full = 0
        for i in range(20000):
            q.tick(i * 1e-5)
            if not q.enqueue(pkt(seq=i)) and len(q) < q.capacity_pkts:
                dropped_before_full += 1
            if i % 3 == 0:
                q.dequeue()  # drain slower than arrivals
        assert dropped_before_full > 0  # RED acted before the tail

    def test_hard_drop_above_max_threshold(self):
        q = make_red(capacity_pkts=1000)
        q.avg = 20.0  # force the average over max_threshold
        assert not q.enqueue(pkt())

    def test_ecn_mode_marks_instead_of_dropping(self):
        q = make_red(ecn_mode=True, capacity_pkts=1000)
        q.avg = 20.0
        victim = pkt(ecn=True)
        assert q.enqueue(victim)
        assert victim.ecn_ce
        assert q.stats.marked == 1
        assert q.stats.dropped == 0

    def test_ecn_mode_still_drops_non_ect(self):
        q = make_red(ecn_mode=True, capacity_pkts=1000)
        q.avg = 20.0
        assert not q.enqueue(pkt(ecn=False))
        assert q.stats.dropped == 1

    def test_idle_period_decays_average(self):
        q = make_red(mean_tx_time=1e-5)
        for i in range(10):
            q.enqueue(pkt(seq=i))
        while q.dequeue() is not None:
            pass
        q.avg = 10.0
        q._idle_since = 0.0
        q.tick(1.0)  # a long idle period
        q.enqueue(pkt(seq=99))
        assert q.avg < 1.0

    def test_deterministic_given_seed(self):
        def run(seed):
            q = make_red(seed=seed, capacity_pkts=1000)
            outcomes = []
            for i in range(5000):
                q.tick(i * 1e-5)
                outcomes.append(q.enqueue(pkt(seq=i)))
                if i % 2 == 0:
                    q.dequeue()
            return outcomes

        assert run(7) == run(7)

    def test_capacity_tail_drop_still_applies(self):
        q = make_red(capacity_pkts=10, min_threshold=5, max_threshold=10)
        for i in range(10):
            q._fifo.append(pkt(seq=i))
        assert not q.enqueue(pkt(seq=99))
