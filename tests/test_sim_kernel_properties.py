"""Hypothesis properties of the kernel's hot-path machinery.

The kernel promises byte-identical determinism and exact
``(time, scheduling-order)`` execution regardless of its internal
shortcuts — the timer wheel, the live pending counter, and the
transient-event pool.  These properties drive randomized interleavings
of schedule / cancel / transient operations across the wheel-granularity
boundary and check each shortcut against a brute-force reference.
"""

from hypothesis import given, settings, strategies as st

from repro.sim.kernel import Simulator

# Delays straddle the default 5 ms wheel granularity so every program
# exercises both the heap path (short) and the wheel path (long).
delays = st.one_of(
    st.floats(min_value=0.0, max_value=0.004),
    st.floats(min_value=0.0, max_value=0.5),
)

#: one operation: (delay, kind, cancel_after or None); ``cancel_after``
#: schedules a cancellation of the event that many seconds after it was
#: scheduled — sometimes before the event's own time, sometimes after.
ops = st.lists(
    st.tuples(
        delays,
        st.sampled_from(["regular", "transient"]),
        st.one_of(st.none(), delays),
    ),
    min_size=1,
    max_size=40,
)


def _run_program(sim, program, fired):
    """Schedule ``program`` on ``sim``; ``fired`` records (now, index)."""
    for i, (delay, kind, cancel_after) in enumerate(program):
        if kind == "transient":
            sim.schedule_transient(delay, lambda i=i: fired.append((sim.now, i)))
        else:
            event = sim.schedule(delay, lambda i=i: fired.append((sim.now, i)))
            if cancel_after is not None:
                sim.schedule(cancel_after, event.cancel)
    sim.run()


@settings(max_examples=60, deadline=None)
@given(program=ops)
def test_property_execution_order_total_and_deterministic(program):
    """Two identical programs produce identical firing sequences, times
    never decrease, and ties fire in scheduling order."""
    results = []
    for _ in range(2):
        fired = []
        _run_program(Simulator(), program, fired)
        results.append(fired)
    first, second = results
    assert first == second
    times = [t for t, _ in first]
    assert times == sorted(times)
    # Same-time firings must appear in scheduling (index) order.  All
    # events here are scheduled at t=0, so delay order is index-free.
    by_time = {}
    for t, i in first:
        by_time.setdefault(t, []).append(i)
    for indices in by_time.values():
        same_delay = {}
        for i in indices:
            same_delay.setdefault(program[i][0], []).append(i)
        for group in same_delay.values():
            assert group == sorted(group)


@settings(max_examples=60, deadline=None)
@given(program=ops)
def test_property_wheel_is_behavior_invisible(program):
    """A huge granularity disables the wheel entirely (every event goes
    straight to the heap); the firing sequence must be identical."""
    with_wheel = []
    _run_program(Simulator(timer_granularity=0.005), program, with_wheel)
    without_wheel = []
    _run_program(Simulator(timer_granularity=1e9), program, without_wheel)
    assert with_wheel == without_wheel


@settings(max_examples=60, deadline=None)
@given(program=ops)
def test_property_pending_matches_brute_force_scan(program):
    """The O(1) live counter always equals a full scan of heap + wheel,
    at every point in the run."""
    sim = Simulator()
    checked = []

    def probe():
        checked.append(True)
        assert sim.pending == sim._pending_scan()
        if sim.peek_time() is not None:
            sim.schedule(0.0005, probe)

    for i, (delay, kind, cancel_after) in enumerate(program):
        if kind == "transient":
            sim.schedule_transient(delay, lambda: None)
        else:
            event = sim.schedule(delay, lambda: None)
            if cancel_after is not None:
                sim.schedule(cancel_after, event.cancel)
        assert sim.pending == sim._pending_scan()
    sim.schedule(0.0, probe)
    sim.run()
    assert checked
    assert sim.pending == 0 == sim._pending_scan()


@settings(max_examples=60, deadline=None)
@given(program=ops)
def test_property_pool_never_resurrects_cancelled_events(program):
    """With the transient pool churning, cancelled regular events never
    fire, live ones fire exactly once, transients fire exactly once."""
    sim = Simulator()
    fired = []
    _run_program(sim, program, fired)
    counts = {}
    for _, i in fired:
        counts[i] = counts.get(i, 0) + 1
    assert all(n == 1 for n in counts.values())
    for i, (delay, kind, cancel_after) in enumerate(program):
        if kind == "transient":
            assert counts.get(i, 0) == 1
        elif cancel_after is None:
            assert counts.get(i, 0) == 1
        elif cancel_after < delay:
            # Cancelled strictly before its own time: must never fire.
            assert i not in counts
        elif cancel_after > delay:
            # Cancelled after it already fired: cancel is a no-op.
            assert counts.get(i, 0) == 1
        # cancel_after == delay is a tie: the event fires first (lower
        # sequence number), so the cancel is a no-op — but equality of
        # two drawn floats is rare enough that asserting it adds noise.
