"""Full-tree strict typing gates.

The authoritative check is ``mypy --strict`` over every ``repro``
package (the ``[tool.mypy]`` table in pyproject.toml).  mypy is an
optional dev dependency, so the direct run skips when it is absent —
but the structural half of the contract (every function in the tree is
fully annotated) is checked unconditionally with ``ast``, so a missing
toolchain cannot silently erode coverage.
"""

import ast
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

import repro

PACKAGE_DIR = Path(repro.__file__).parent
REPO_ROOT = PACKAGE_DIR.parent.parent


def _unannotated_functions() -> list[str]:
    problems: list[str] = []
    for path in sorted(PACKAGE_DIR.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        tree = ast.parse(path.read_text(encoding="utf-8"))
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            args = node.args
            every = args.posonlyargs + args.args + args.kwonlyargs
            missing = [
                a.arg
                for a in every
                if a.annotation is None and a.arg not in ("self", "cls")
            ]
            if args.vararg is not None and args.vararg.annotation is None:
                missing.append(f"*{args.vararg.arg}")
            if args.kwarg is not None and args.kwarg.annotation is None:
                missing.append(f"**{args.kwarg.arg}")
            if node.returns is None or missing:
                what = "return" if node.returns is None else ",".join(missing)
                problems.append(f"{path}:{node.lineno} {node.name} ({what})")
    return problems


class TestFullTreeTyping:
    def test_every_function_in_tree_is_fully_annotated(self):
        problems = _unannotated_functions()
        assert problems == [], "\n".join(problems)

    def test_mypy_config_covers_whole_package(self):
        """pyproject must target the root package, not a subset."""
        text = (REPO_ROOT / "pyproject.toml").read_text(encoding="utf-8")
        assert 'packages = ["repro"]' in text
        assert "strict = true" in text

    @pytest.mark.skipif(
        shutil.which("mypy") is None, reason="mypy not installed"
    )
    def test_mypy_strict_full_tree(self):
        proc = subprocess.run(
            [sys.executable, "-m", "mypy"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
