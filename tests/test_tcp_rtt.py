"""Unit tests for RTT estimation and the paper's smoothed RTT."""

import pytest

from repro.tcp.rtt import EwmaRtt, RttEstimator


class TestRttEstimator:
    def test_first_sample_initializes(self):
        est = RttEstimator(min_rto=0.001)
        est.sample(0.1)
        assert est.srtt == pytest.approx(0.1)
        assert est.rttvar == pytest.approx(0.05)
        assert est.rto == pytest.approx(0.1 + 4 * 0.05)

    def test_jacobson_update(self):
        est = RttEstimator(min_rto=0.001)
        est.sample(0.1)
        est.sample(0.2)
        # rttvar = 0.75*0.05 + 0.25*|0.1-0.2| = 0.0625
        assert est.rttvar == pytest.approx(0.0625)
        # srtt = 0.875*0.1 + 0.125*0.2 = 0.1125
        assert est.srtt == pytest.approx(0.1125)

    def test_min_rto_floor(self):
        est = RttEstimator(min_rto=0.2)
        est.sample(0.001)
        assert est.rto == 0.2

    def test_max_rto_ceiling(self):
        est = RttEstimator(min_rto=0.001, max_rto=1.0)
        est.sample(10.0)
        assert est.rto == 1.0

    def test_backoff_doubles(self):
        est = RttEstimator(min_rto=0.1)
        est.sample(0.001)
        est.backoff()
        assert est.rto == pytest.approx(0.2)
        est.backoff()
        assert est.rto == pytest.approx(0.4)

    def test_backoff_capped_at_64x(self):
        est = RttEstimator(min_rto=0.1, max_rto=1000.0)
        est.sample(0.001)
        for _ in range(20):
            est.backoff()
        assert est.backoff_factor == 64.0

    def test_fresh_sample_resets_backoff(self):
        est = RttEstimator(min_rto=0.1)
        est.sample(0.001)
        est.backoff()
        est.sample(0.001)
        assert est.backoff_factor == 1.0

    def test_valid_sample_retires_backoff_before_rto_recompute(self):
        # Karn/RFC 6298: after exponential backoff, the first RTO
        # computed from a fresh valid sample must not carry the backoff
        # multiplier — the very next timer arms at the un-backed-off
        # value, shrinking back to (about) the pre-backoff RTO.
        est = RttEstimator(min_rto=0.05)
        est.sample(0.1)
        rto_before = est.rto
        est.backoff()
        est.backoff()
        assert est.rto == pytest.approx(4 * rto_before)
        est.sample(0.1)
        assert est.backoff_factor == 1.0
        # Identical samples keep srtt at 0.1 while rttvar decays, so the
        # recomputed RTO must land at or below the pre-backoff value —
        # and far below the 4x backed-off one.
        assert est.rto <= rto_before
        assert est.rto < 4 * rto_before / 2

    def test_initial_rto_before_samples(self):
        est = RttEstimator(min_rto=0.05, initial_rto=0.3)
        assert est.rto == 0.3

    def test_negative_sample_rejected(self):
        with pytest.raises(ValueError):
            RttEstimator().sample(-0.1)

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            RttEstimator(min_rto=0.0)
        with pytest.raises(ValueError):
            RttEstimator(min_rto=1.0, max_rto=0.5)

    def test_latest_sample_tracked(self):
        est = RttEstimator()
        est.sample(0.123)
        assert est.latest_sample == 0.123


class TestEwmaRtt:
    def test_first_sample_seeds(self):
        ewma = EwmaRtt(alpha=0.25)
        assert ewma.update(0.4) == 0.4
        assert ewma.value == 0.4

    def test_ewma_formula(self):
        ewma = EwmaRtt(alpha=0.25)
        ewma.update(0.4)
        assert ewma.update(0.8) == pytest.approx(0.75 * 0.4 + 0.25 * 0.8)

    def test_paper_alpha_default(self):
        assert EwmaRtt().alpha == 0.25

    def test_invalid_alpha_rejected(self):
        for alpha in (0.0, -0.5, 1.5):
            with pytest.raises(ValueError):
                EwmaRtt(alpha=alpha)

    def test_negative_sample_rejected(self):
        with pytest.raises(ValueError):
            EwmaRtt().update(-1.0)

    def test_converges_to_constant_input(self):
        ewma = EwmaRtt(alpha=0.25)
        for _ in range(100):
            ewma.update(0.5)
        assert ewma.value == pytest.approx(0.5)
