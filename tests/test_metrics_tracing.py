"""Tests for the packet logger and its train extraction."""

import pytest

from repro.metrics.tracing import PacketLogger
from tests.helpers import make_pair


class TestPacketLogger:
    def test_records_deliveries(self):
        sim, star, source, _sink = make_pair()
        logger = PacketLogger(star.bottleneck)
        source.send_message(25)
        sim.run(until=0.1)
        assert len(logger) == 25
        assert logger.total_bytes() == 25 * 1460
        times = logger.times
        assert times == sorted(times)

    def test_flow_filter(self):
        sim, star, source, _sink = make_pair()
        logger = PacketLogger(star.bottleneck, flow_id=999)
        source.send_message(10)
        sim.run(until=0.1)
        assert len(logger) == 0

    def test_data_only_filter_skips_acks(self):
        sim, star, source, _sink = make_pair()
        # ACKs flow on the reverse path; log that link without filtering.
        reverse = star.network.link_between(star.frontend, star.switch)
        all_logger = PacketLogger(reverse, data_only=False)
        data_logger = PacketLogger(reverse, data_only=True)
        source.send_message(10)
        sim.run(until=0.1)
        assert len(all_logger) == 10  # the ACKs
        assert len(data_logger) == 0

    def test_chains_existing_hook(self):
        sim, star, source, _sink = make_pair()
        seen = []
        star.bottleneck.on_deliver = lambda pkt: seen.append(pkt.seq)
        logger = PacketLogger(star.bottleneck)
        source.send_message(5)
        sim.run(until=0.1)
        assert len(seen) == 5
        assert len(logger) == 5

    def test_detach_restores_hook(self):
        sim, star, source, _sink = make_pair()
        logger = PacketLogger(star.bottleneck)
        logger.detach()
        source.send_message(5)
        sim.run(until=0.1)
        assert len(logger) == 0

    def test_trains_from_live_traffic(self):
        """An ON/OFF sender's trains are recoverable from the wire."""
        sim, star, source, _sink = make_pair()
        logger = PacketLogger(star.bottleneck)
        for i in range(4):
            sim.schedule_at(0.01 * (i + 1), lambda: source.send_message(10))
        sim.run(until=0.2)
        trains = logger.trains(gap=1e-3)
        assert len(trains) == 4
        assert all(t.n_packets == 10 for t in trains)

    def test_retransmission_flag_recorded(self):
        from tests.helpers import drop_seqs_once, install_loss

        sim, star, source, _sink = make_pair()
        logger = PacketLogger(star.bottleneck)
        install_loss(star.bottleneck, drop_seqs_once({3}))
        source.send_message(20)
        sim.run(until=1.0)
        retx = [r for r in logger.records if r.is_retransmission]
        assert any(r.seq == 3 for r in retx)


class TestObserverChain:
    """Loggers are link observers: detach order must not matter.

    The save-and-restore hook chaining this replaced silently dropped
    the *second* logger when the *first* detached (non-LIFO order): its
    restore wrote back a stale hook that no longer pointed at anyone.
    """

    def test_non_lifo_detach_keeps_later_logger_alive(self):
        sim, star, source, _sink = make_pair()
        first = PacketLogger(star.bottleneck)
        second = PacketLogger(star.bottleneck)
        first.detach()  # non-LIFO: the earlier attachment leaves first
        source.send_message(10)
        sim.run(until=0.1)
        assert len(first) == 0
        assert len(second) == 10

    def test_lifo_detach_still_works(self):
        sim, star, source, _sink = make_pair()
        first = PacketLogger(star.bottleneck)
        second = PacketLogger(star.bottleneck)
        second.detach()
        source.send_message(10)
        sim.run(until=0.1)
        assert len(first) == 10
        assert len(second) == 0

    def test_detach_is_idempotent(self):
        sim, star, source, _sink = make_pair()
        first = PacketLogger(star.bottleneck)
        second = PacketLogger(star.bottleneck)
        first.detach()
        first.detach()  # second call must not touch the remaining observer
        source.send_message(5)
        sim.run(until=0.1)
        assert len(first) == 0
        assert len(second) == 5

    def test_three_loggers_any_detach_order(self):
        sim, star, source, _sink = make_pair()
        loggers = [PacketLogger(star.bottleneck) for _ in range(3)]
        loggers[1].detach()
        loggers[0].detach()
        source.send_message(7)
        sim.run(until=0.1)
        assert [len(lg) for lg in loggers] == [0, 0, 7]

    def test_legacy_hook_runs_before_observers(self):
        sim, star, source, _sink = make_pair()
        order = []
        star.bottleneck.on_deliver = lambda pkt: order.append("legacy")
        star.bottleneck.add_observer(lambda pkt: order.append("observer"))
        source.send_message(1)
        sim.run(until=0.1)
        assert order == ["legacy", "observer"]
