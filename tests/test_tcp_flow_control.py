"""Tests for receiver flow control (advertised window, app drain)."""

import pytest

from repro.net.topology import build_star
from repro.sim.kernel import Simulator
from repro.tcp.base import TcpConfig, TcpSink
from repro.tcp.factory import create_source
from tests.helpers import FAST


def fc_pair(buffer_segments=None, drain_pps=None):
    sim = Simulator()
    star = build_star(sim, 1)
    source = create_source(
        "reno", sim, star.servers[0], flow_id=1,
        dst_id=star.frontend.node_id, config=TcpConfig(**FAST),
    )
    sink = TcpSink(
        sim, star.frontend, flow_id=1,
        receive_buffer_segments=buffer_segments,
        drain_rate_pps=drain_pps,
    )
    return sim, star, source, sink


class TestAdvertisedWindow:
    def test_unbounded_buffer_advertises_infinite(self):
        _sim, _star, _source, sink = fc_pair()
        assert sink._advertised_window() == float("inf")

    def test_window_shrinks_with_backlog(self):
        _sim, _star, _source, sink = fc_pair(buffer_segments=10, drain_pps=1.0)
        sink.next_expected = 4  # 4 in-order segments undrained
        assert sink._advertised_window() == 6

    def test_out_of_order_data_occupies_buffer(self):
        _sim, _star, _source, sink = fc_pair(buffer_segments=10, drain_pps=1.0)
        sink._out_of_order = {5, 6}
        assert sink._advertised_window() == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            fc_pair(buffer_segments=0)
        with pytest.raises(ValueError):
            fc_pair(buffer_segments=5, drain_pps=0.0)


class TestSlowApplication:
    def test_transfer_throttled_to_drain_rate(self):
        """A slow reader caps throughput at its drain rate, not the wire."""
        drain = 2000.0  # segments/s, far below the 1 Gbps wire
        sim, _star, source, sink = fc_pair(buffer_segments=20, drain_pps=drain)
        msg = source.send_message(200)
        sim.run(until=5.0)
        assert source.all_acked
        # 200 segments at ~2000 seg/s ≈ 0.1 s; wire alone would take ~2 ms.
        assert 0.08 < msg.completion_time < 0.3

    def test_sender_respects_advertised_window(self):
        sim, _star, source, sink = fc_pair(buffer_segments=8, drain_pps=500.0)
        source.send_message(100)
        overshoot = {"max": 0}

        def probe():
            overshoot["max"] = max(overshoot["max"], sink._buffered_segments())
            if sim.now < 1.0:
                sim.schedule(1e-3, probe)

        sim.schedule_at(0.0, probe)
        sim.run(until=1.5)
        # Buffer occupancy bounded by its capacity plus the 1-segment
        # persist floor.
        assert overshoot["max"] <= 9

    def test_zero_window_resolves_without_deadlock(self):
        sim, _star, source, sink = fc_pair(buffer_segments=2, drain_pps=100.0)
        source.send_message(30)
        sim.run(until=5.0)
        assert source.all_acked
        assert sink.app_read_segments == 30 or sink.app_read_segments == 29

    def test_overflow_drops_counted(self):
        sim, _star, source, sink = fc_pair(buffer_segments=2, drain_pps=50.0)
        source.send_message(20)
        sim.run(until=5.0)
        assert sink.rwnd_overflow_drops > 0
        assert source.all_acked

    def test_instant_drain_never_limits(self):
        sim, _star, source, sink = fc_pair(buffer_segments=4, drain_pps=None)
        msg = source.send_message(300)
        sim.run(until=1.0)
        assert source.all_acked
        assert msg.completion_time < 0.02
        assert sink.rwnd_overflow_drops == 0

    def test_fast_reader_imposes_no_penalty(self):
        sim_fc, _s1, src_fc, _k1 = fc_pair(buffer_segments=1000, drain_pps=1e6)
        m1 = src_fc.send_message(200)
        sim_fc.run(until=1.0)
        sim_plain, _s2, src_plain, _k2 = fc_pair()
        m2 = src_plain.send_message(200)
        sim_plain.run(until=1.0)
        assert m1.completion_time == pytest.approx(
            m2.completion_time, rel=0.05
        )
