"""Runtime invariant checking: monitor wiring, violations, clean runs.

Covers the three check families (monotonic time, packet conservation,
flow sanity), the ``Kernel(check_invariants=True)`` / environment /
``--check-invariants`` enablement channels, and the headline guarantee:
a quick-preset point of every registered experiment runs clean with the
monitor on, while a deliberately broken queue is caught.
"""

import os

import pytest

from repro.experiments import registry
from repro.net.queues import DropTailQueue
from repro.sim import InvariantMonitor, InvariantViolation, Kernel, Simulator
from tests.helpers import FAST, make_pair


class TestEnablement:
    def test_kernel_is_simulator(self):
        assert Kernel is Simulator

    def test_off_by_default(self):
        assert Simulator().invariants is None

    def test_constructor_flag(self):
        sim = Kernel(check_invariants=True)
        assert isinstance(sim.invariants, InvariantMonitor)
        assert Kernel(check_invariants=False).invariants is None

    def test_environment_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "1")
        assert Simulator().invariants is not None
        monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "0")
        assert Simulator().invariants is None

    def test_constructor_overrides_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "1")
        assert Simulator(check_invariants=False).invariants is None


class TestMonotonicTime:
    def test_backwards_event_time_raises(self):
        monitor = InvariantMonitor(Simulator())
        monitor.after_event(1.0)
        with pytest.raises(InvariantViolation, match="backwards"):
            monitor.after_event(0.5)

    def test_equal_timestamps_are_fine(self):
        monitor = InvariantMonitor(Simulator())
        monitor.after_event(1.0)
        monitor.after_event(1.0)

    def test_periodic_full_check(self):
        monitor = InvariantMonitor(Simulator(), check_every_events=2)
        for _ in range(5):
            monitor.after_event(0.0)
        assert monitor.events_seen == 5
        assert monitor.checks_run == 2

    def test_check_interval_validated(self):
        with pytest.raises(ValueError):
            InvariantMonitor(Simulator(), check_every_events=0)


class _LeakyQueue(DropTailQueue):
    """Admits packets, then silently evicts without counting — the bug
    class (lost accounting) the conservation check exists to catch."""

    def _admit(self, pkt):
        super()._admit(pkt)
        if len(self._fifo) > 2:
            self._fifo.popleft()  # uncounted eviction


class TestPacketConservation:
    def test_honest_queue_balances(self):
        monitor = InvariantMonitor(Simulator())
        queue = DropTailQueue(capacity_pkts=2, name="ok")
        monitor.register_queue(queue)
        for _ in range(4):  # two admitted, two refused (counted drops)
            queue.enqueue(object())
        queue.dequeue()
        monitor.check_all()
        assert queue.stats.dropped == 2

    def test_broken_queue_is_caught(self):
        monitor = InvariantMonitor(Simulator())
        queue = _LeakyQueue(capacity_pkts=10, name="leaky")
        monitor.register_queue(queue)
        for _ in range(4):
            queue.enqueue(object())
        with pytest.raises(InvariantViolation, match="conservation"):
            monitor.check_all()

    def test_broken_queue_caught_in_simulation(self):
        """The kernel's periodic sweep sees the broken queue mid-run."""
        sim = Simulator(check_invariants=True)
        assert sim.invariants is not None
        sim.invariants.check_every_events = 1
        queue = _LeakyQueue(capacity_pkts=10, name="leaky")
        sim.invariants.register_queue(queue)
        for i in range(4):
            sim.schedule_at(0.1 * i, lambda: queue.enqueue(object()))
        with pytest.raises(InvariantViolation, match="conservation"):
            sim.run()


class TestFlowSanity:
    def _flow(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "1")
        sim, _star, source, _sink = make_pair("reno")
        assert sim.invariants is not None
        return sim, source

    def test_links_and_flows_self_register(self, monkeypatch):
        sim, source = self._flow(monkeypatch)
        assert source in sim.invariants._flows
        assert sim.invariants._queues  # the star's link queues

    def test_cwnd_below_one_segment_is_caught(self, monkeypatch):
        sim, source = self._flow(monkeypatch)
        source.send_bytes(10_000)
        sim.run(until=0.001)
        source.cwnd = 0.5
        with pytest.raises(InvariantViolation, match="cwnd"):
            sim.invariants.check_all()

    def test_negative_flight_is_caught(self, monkeypatch):
        sim, source = self._flow(monkeypatch)
        source.send_bytes(10_000)
        sim.run(until=0.001)
        source.highest_ack = source.t_seqno + 5
        with pytest.raises(InvariantViolation, match="in_flight|flight"):
            sim.invariants.check_all()

    def test_clean_transfer_passes(self, monkeypatch):
        sim, source = self._flow(monkeypatch)
        msg = source.send_bytes(50_000)
        sim.run(until=1.0)
        assert msg.finish_time is not None
        assert sim.invariants.events_seen > 0
        assert sim.invariants.checks_run > 0
        assert sim.invariants.violations == 0

    def test_trim_probe_pair_is_not_a_violation(self, monkeypatch):
        """TRIM sends its probe pair below the minimum window; the
        high-water-mark + slack cap must accommodate it."""
        monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "1")
        sim, _star, source, _sink = make_pair("trim", config=None)
        source.send_bytes(30_000)
        sim.run(until=0.2)
        source.send_bytes(30_000)  # second train: probe mode entered
        sim.run(until=1.0)
        assert sim.invariants.checks_run > 0


class TestExperimentsUnderInvariants:
    @pytest.mark.parametrize("experiment_id", registry.canonical_ids())
    def test_first_quick_point_runs_clean(self, experiment_id, monkeypatch):
        """Every registered experiment's quick preset satisfies the
        kernel/queue/flow invariants (first sweep point, TRIM where the
        experiment takes a protocol — the variant with probe traffic)."""
        monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "1")
        exp = registry.get(experiment_id)
        if exp.uses_protocols:
            params = exp.make_params("quick", protocol="trim")
        else:
            params = exp.make_params("quick")
        points = exp.points(params)
        assert points
        exp.run_point(params, points[0], 1)  # raises on any violation


class TestCliFlag:
    def test_check_invariants_flag_sets_environment(self, monkeypatch, capsys):
        from repro.experiments.__main__ import main

        monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "0")
        assert main(["fig1", "--preset", "quick", "--no-cache",
                     "--check-invariants"]) == 0
        assert os.environ["REPRO_CHECK_INVARIANTS"] == "1"
        assert "fig1" in capsys.readouterr().out
