"""Chaos-mode golden traces: fault injection is part of the determinism
contract.

Same canonical star scenario as ``test_golden_traces.py``, but with a
fixed :class:`~repro.faults.FaultPlan` armed against the bottleneck —
a heavy loss burst, a jitter window, a buffer shrink/restore, a short
outage, and a corruption window.  The full packet trace, executed-event
count, per-flow sender state, and the injector's per-fault counters are
hashed into fixtures under ``tests/golden/faults_*.json``.

Same seed + same plan ⇒ byte-identical fault schedule and trace; any
change to the injector's draw order, the link's delivery interception,
or the queue-resize eviction rule fails these tests loudly.

To re-record after an *intended* behavior change::

    PYTHONPATH=src python -m pytest tests/test_golden_faults.py --regen-golden
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path

import pytest

from repro.experiments.scenarios import (
    ecn_threshold_for,
    packets_per_second,
    path_base_rtt,
)
from repro.faults import (
    BufferResize,
    Corrupt,
    DelayJitter,
    FaultInjector,
    FaultPlan,
    LinkDown,
    LinkUp,
    LossBurst,
)
from repro.metrics.tracing import PacketLogger
from repro.net.topology import build_star
from repro.sim.kernel import Simulator
from repro.tcp.factory import create_source, default_config
from repro.tcp.base import TcpSink

GOLDEN_DIR = Path(__file__).parent / "golden"

#: the loss-based baseline and the paper's protocol, whose probe/delay
#: machinery must stay deterministic under injected chaos too.
PROTOCOLS = ("reno", "trim")

# Scenario constants — identical to test_golden_traces.py so the two
# suites certify the same hot path with and without faults armed.
BANDWIDTH = 100e6
FRONTEND_BANDWIDTH = 50e6
DELAY = 100e-6
BUFFER_PKTS = 8
N_SERVERS = 3
TRAINS_PER_FLOW = 3
TRAIN_SEGMENTS = 60
TRAIN_GAP = 0.08
HORIZON = 0.45
FAULT_SEED = 7

BOTTLENECK = "sw->frontend"

#: the fixed chaos schedule: every impairment type the subsystem models
#: (surges excluded — they need an experiment-owned flow factory).  The
#: times sit inside the trains' busy windows (trains start at ~0.005,
#: ~0.085, ~0.165 and drain in tens of milliseconds) so every fault
#: actually bites — the per-fixture assertions below enforce that.
PLAN = FaultPlan.of([
    LossBurst(time=0.02, link=BOTTLENECK, rate=0.3, duration=0.03),
    Corrupt(time=0.09, link=BOTTLENECK, rate=0.15, duration=0.03),
    DelayJitter(time=0.10, link=BOTTLENECK, mean_s=3e-4, duration=0.03),
    LinkDown(time=0.168, link=BOTTLENECK),
    LinkUp(time=0.178, link=BOTTLENECK),
    BufferResize(time=0.180, link=BOTTLENECK, pkts=2),
    BufferResize(time=0.22, link=BOTTLENECK, pkts=BUFFER_PKTS),
])


def run_golden_fault_scenario(protocol: str, plan: FaultPlan = PLAN):
    """The canonical scenario under ``plan``; returns the fixture metadata."""
    sim = Simulator(check_invariants=False)
    star = build_star(
        sim,
        N_SERVERS,
        bandwidth_bps=BANDWIDTH,
        delay_s=DELAY,
        buffer_pkts=BUFFER_PKTS,
        frontend_bandwidth_bps=FRONTEND_BANDWIDTH,
        ecn_threshold_pkts=ecn_threshold_for(protocol, FRONTEND_BANDWIDTH),
    )
    config = default_config(protocol, min_rto=0.01, initial_rto=0.01)
    extras = {}
    if protocol == "trim":
        extras = dict(
            capacity_pps=packets_per_second(BANDWIDTH),
            base_rtt=path_base_rtt([(DELAY, BANDWIDTH)] * 2),
        )
    sources = []
    for i, server in enumerate(star.servers):
        source = create_source(
            protocol,
            sim,
            server,
            star.frontend.node_id,
            flow_id=i,
            config=config,
            **extras,
        )
        TcpSink(sim, star.frontend, flow_id=i)
        sources.append(source)

    injector = FaultInjector(sim, star.network, plan, seed=FAULT_SEED)
    injector.arm()

    data_log = PacketLogger(star.bottleneck, data_only=False)
    ack_log = PacketLogger(star.frontend.nic, data_only=False)

    for i, source in enumerate(sources):
        for k in range(TRAINS_PER_FLOW):
            sim.schedule_at(
                0.005 + i * 0.003 + k * TRAIN_GAP,
                lambda s=source: s.send_message(TRAIN_SEGMENTS),
            )
    sim.run(until=HORIZON)

    stats = injector.total_stats()
    h = hashlib.sha256()
    for logger in (data_log, ack_log):
        for r in logger.records:
            h.update(
                f"{r.time!r}|{r.flow_id}|{r.seq}|{r.size_bytes}|"
                f"{int(r.is_retransmission)}\n".encode()
            )
    h.update(f"events={sim.events_executed}\n".encode())
    for s in sources:
        h.update(
            f"flow{s.flow_id}:{s.stats.segments_sent}:{s.stats.retransmits}:"
            f"{s.stats.timeouts}:{s.stats.fast_retransmits}:"
            f"{s.highest_ack}:{s.cwnd!r}:{s.ssthresh!r}\n".encode()
        )
    for field in dataclasses.fields(stats):
        h.update(f"fault.{field.name}={getattr(stats, field.name)}\n".encode())

    meta = {
        "protocol": protocol,
        "trace_sha256": h.hexdigest(),
        "n_records": len(data_log) + len(ack_log),
        "events_executed": sim.events_executed,
        "segments_sent": sum(s.stats.segments_sent for s in sources),
        "retransmits": sum(s.stats.retransmits for s in sources),
        "timeouts": sum(s.stats.timeouts for s in sources),
        "congestion_drops": star.network.total_dropped(),
        "injected_drops": stats.injected_drops,
        "corrupted": stats.corrupted,
        "delayed": stats.delayed,
        "down_drops": stats.down_drops,
        "evictions": stats.evictions,
        "outages": stats.outages,
    }
    return meta


def _fixture_path(protocol: str) -> Path:
    return GOLDEN_DIR / f"faults_{protocol}.json"


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_golden_fault_trace(protocol, regen_golden):
    meta = run_golden_fault_scenario(protocol)

    # The fixture must keep exercising every impairment it certifies —
    # a plan the flows dodge guards nothing.  (down_drops are not
    # asserted: whether a packet is mid-propagation during the 10 ms
    # outage is protocol-dependent.)
    assert meta["injected_drops"] > 0, "loss burst stopped biting"
    assert meta["corrupted"] > 0, "corrupt window stopped biting"
    assert meta["delayed"] > 0, "jitter window stopped biting"
    assert meta["evictions"] > 0, "buffer shrink stopped evicting"
    assert meta["outages"] == 1
    assert meta["retransmits"] > 0, "scenario lost its recovery coverage"

    path = _fixture_path(protocol)
    if regen_golden:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(meta, indent=2, sort_keys=True) + "\n")
        return
    if not path.exists():
        pytest.fail(
            f"missing golden fixture {path}; record it with "
            "'python -m pytest tests/test_golden_faults.py --regen-golden' "
            "and commit the result"
        )
    expected = json.loads(path.read_text())
    assert meta["trace_sha256"] == expected["trace_sha256"], (
        f"{protocol}: the chaos-mode packet trace diverged from the "
        f"recorded golden fixture (got {meta} vs recorded {expected}). "
        "If this behavior change is intended, re-record with "
        "--regen-golden; otherwise the fault schedule or its draw order "
        "changed."
    )
    assert meta == expected


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_golden_fault_scenario_is_deterministic(protocol):
    """Same seed + same plan ⇒ identical fault schedule and trace."""
    assert run_golden_fault_scenario(protocol) == run_golden_fault_scenario(protocol)


def test_idle_fault_state_leaves_golden_trace_unchanged():
    """An armed-but-idle plan must not perturb the fault-free trace.

    The plan schedules its only window *after* the horizon, so every
    delivery traverses the attached fault state's ``filter_delivery``
    with no active window — which must draw no randomness and add no
    events, leaving the trace byte-identical to the fault-free golden
    fixture recorded by ``test_golden_traces.py``.
    """
    idle = FaultPlan.of(
        [LossBurst(time=HORIZON + 1.0, link=BOTTLENECK, rate=0.5, duration=0.1)]
    )
    meta = run_golden_fault_scenario("reno", plan=idle)
    baseline = json.loads((GOLDEN_DIR / "reno.json").read_text())
    # The fixture hash covers fault counters too, so compare the parts
    # shared with the fault-free fixture instead of the digest.
    assert meta["n_records"] == baseline["n_records"]
    assert meta["events_executed"] == baseline["events_executed"]
    assert meta["segments_sent"] == baseline["segments_sent"]
    assert meta["retransmits"] == baseline["retransmits"]
    assert meta["timeouts"] == baseline["timeouts"]
    assert meta["congestion_drops"] == baseline["dropped_packets"]
    assert meta["injected_drops"] == 0 and meta["delayed"] == 0
