"""Tests for the sweep engine: seeds, cache, registry, determinism."""

import dataclasses
import pickle

import pytest

from repro.experiments import registry
from repro.experiments.base import Experiment, Point
from repro.experiments.store import to_jsonable
from repro.runner import ResultCache, SweepRunner
from repro.sim.randomness import RandomStreams, derive_seed


# ----------------------------------------------------------------------
# Seed derivation
# ----------------------------------------------------------------------

class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "fig8/sw4-r0") == derive_seed(1, "fig8/sw4-r0")

    def test_names_decorrelate(self):
        seeds = {derive_seed(1, f"fig8/sw4-r{i}") for i in range(50)}
        assert len(seeds) == 50

    def test_root_seed_decorrelates(self):
        assert derive_seed(1, "fig8/p") != derive_seed(2, "fig8/p")

    def test_range(self):
        for i in range(20):
            s = derive_seed(i, "x")
            assert 0 <= s < 2**63

    def test_matches_stream_spawn(self):
        streams = RandomStreams(7)
        assert streams.spawn_seed("fig4/run") == derive_seed(7, "fig4/run")


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

class TestRegistry:
    def test_round_trip_every_id(self):
        for experiment_id in registry.ids():
            experiment = registry.get(experiment_id)
            assert experiment.id in registry.canonical_ids()
            # the alias and the canonical id resolve to the same object
            assert registry.get(experiment.id) is experiment

    def test_aliases_resolve_to_same_instance(self):
        assert registry.get("fig2") is registry.get("fig1")
        assert registry.get("fig6") is registry.get("fig4")
        assert registry.get("fig7") is registry.get("fig5")
        assert registry.get("table1") is registry.get("fig12")

    def test_unknown_id_raises_with_known_list(self):
        with pytest.raises(KeyError, match="fig8"):
            registry.get("fig99")

    def test_every_experiment_has_contract_surface(self):
        for experiment_id in registry.canonical_ids():
            experiment = registry.get(experiment_id)
            assert experiment.title
            assert experiment.params_cls is not None
            params = experiment.make_params("quick")
            points = experiment.points(params)
            assert points, experiment_id
            labels = [p.label for p in points]
            assert len(set(labels)) == len(labels), experiment_id
            # points and params must survive the process boundary
            pickle.dumps((experiment.id, params, points))

    def test_make_params_rejects_bad_preset(self):
        with pytest.raises(ValueError, match="preset"):
            registry.get("fig8").make_params("huge")


# ----------------------------------------------------------------------
# A tiny in-test experiment for cache/failure plumbing
# ----------------------------------------------------------------------

@dataclasses.dataclass
class _ToyParams:
    protocol: str = "reno"
    scale: int = 2

    @classmethod
    def paper(cls, protocol="reno", **overrides):
        return cls(protocol=protocol, **overrides)

    @classmethod
    def quick(cls, protocol="reno", **overrides):
        return cls(protocol=protocol, **overrides)


class _ToyExperiment(Experiment):
    id = "toy"
    title = "test double"
    params_cls = _ToyParams

    def __init__(self):
        self.calls = 0

    def points(self, params):
        return [Point(f"p{i}", {"i": i}) for i in range(3)]

    def run_point(self, params, point, seed):
        self.calls += 1
        return {"i": point.kwargs["i"], "scale": params.scale, "seed": seed}


class _FailingExperiment(_ToyExperiment):
    id = "toy-fail"

    def run_point(self, params, point, seed):
        self.calls += 1
        if point.kwargs["i"] == 1:
            raise RuntimeError("boom")
        return point.kwargs["i"]


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key("toy", _ToyParams(), Point("p0"), 123)
        assert cache.get(key) is None
        cache.put(key, {"x": 1.25})
        assert cache.get(key) == {"x": 1.25}
        assert (cache.hits, cache.misses) == (1, 1)

    def test_key_changes_with_params(self, tmp_path):
        cache = ResultCache(tmp_path)
        k1 = cache.key("toy", _ToyParams(scale=2), Point("p0"), 1)
        k2 = cache.key("toy", _ToyParams(scale=3), Point("p0"), 1)
        assert k1 != k2

    def test_key_changes_with_point_seed_and_version(self, tmp_path):
        cache = ResultCache(tmp_path)
        base = cache.key("toy", _ToyParams(), Point("p0"), 1)
        assert base != cache.key("toy", _ToyParams(), Point("p1"), 1)
        assert base != cache.key("toy", _ToyParams(), Point("p0"), 2)
        assert base != cache.key("toy", _ToyParams(), Point("p0"), 1, version="9.9")
        assert base == cache.key("toy", _ToyParams(), Point("p0"), 1)

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache.key("toy", _ToyParams(), Point("p0"), 1)
        cache.put(key, "value")
        path = cache._path(key)
        path.write_bytes(b"not a pickle")
        with pytest.warns(RuntimeWarning, match="corrupt cache entry"):
            assert cache.get(key) is None
        assert not path.exists()  # corrupt entries are evicted
        # Corruption is counted apart from ordinary misses, so a
        # damaged cache directory never masquerades as a cold cache.
        assert cache.corrupt == 1
        assert cache.misses == 1

    def test_float_round_trip_is_exact(self, tmp_path):
        cache = ResultCache(tmp_path)
        value = {"f": 0.1 + 0.2, "g": 1e-300}
        key = cache.key("toy", _ToyParams(), Point("p0"), 1)
        cache.put(key, value)
        assert cache.get(key) == value


class TestSweepRunner:
    def test_inline_run_reduces_in_point_order(self):
        experiment = _ToyExperiment()
        payload = SweepRunner().run(experiment, _ToyParams(), seed=5)
        assert [r["i"] for r in payload] == [0, 1, 2]
        assert [r["seed"] for r in payload] == [
            derive_seed(5, f"toy/p{i}") for i in range(3)
        ]

    def test_cache_round_trip_and_stats(self, tmp_path):
        cache = ResultCache(tmp_path)
        experiment = _ToyExperiment()
        runner = SweepRunner(cache=cache)
        first = runner.run(experiment, _ToyParams(), seed=5)
        assert runner.last_stats.executed == 3
        assert runner.last_stats.cache_hits == 0
        again = runner.run(experiment, _ToyParams(), seed=5)
        assert again == first
        assert runner.last_stats.executed == 0
        assert runner.last_stats.cache_hits == 3
        assert experiment.calls == 3  # second run never re-executed

    def test_corrupt_cache_entries_surface_in_stats(self, tmp_path):
        cache = ResultCache(tmp_path)
        experiment = _ToyExperiment()
        runner = SweepRunner(cache=cache)
        runner.run(experiment, _ToyParams(), seed=5)
        # Corrupt one stored entry: the re-run must classify it (warn +
        # count) instead of letting it look like a plain cache miss.
        key = cache.key(
            "toy", _ToyParams(), Point("p0", {"i": 0}),
            derive_seed(5, "toy/p0"),
        )
        cache._path(key).write_bytes(b"garbage")
        with pytest.warns(RuntimeWarning, match="corrupt cache entry"):
            runner.run(experiment, _ToyParams(), seed=5)
        assert runner.last_stats.cache_corrupt == 1
        assert runner.last_stats.cache_hits == 2
        assert runner.last_stats.executed == 1  # the damaged point re-ran

    def test_cache_write_failure_warns_and_counts(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path)
        experiment = _ToyExperiment()
        runner = SweepRunner(cache=cache)

        def refuse(key, value):
            raise OSError("disk full")

        monkeypatch.setattr(cache, "put", refuse)
        with pytest.warns(RuntimeWarning, match="cache write failed"):
            payload = runner.run(experiment, _ToyParams(), seed=5)
        # The sweep's own results are intact; only reuse is lost.
        assert [r["i"] for r in payload] == [0, 1, 2]
        assert runner.last_stats.cache_write_errors == 3

    def test_cache_invalidated_by_params_change(self, tmp_path):
        cache = ResultCache(tmp_path)
        experiment = _ToyExperiment()
        runner = SweepRunner(cache=cache)
        runner.run(experiment, _ToyParams(scale=2), seed=5)
        runner.run(experiment, _ToyParams(scale=3), seed=5)
        assert runner.last_stats.cache_hits == 0
        assert experiment.calls == 6

    def test_failed_point_degrades_and_warns(self):
        experiment = _FailingExperiment()
        runner = SweepRunner(retries=1)
        with pytest.warns(RuntimeWarning, match="failed"):
            payload = runner.run(experiment, _ToyParams(), seed=0)
        assert payload == [0, 2]  # default reduce drops the None
        failures = runner.last_stats.failures
        assert [f.label for f in failures] == ["p1"]
        assert failures[0].attempts == 2  # original try + one retry

    def test_failures_are_not_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        experiment = _FailingExperiment()
        runner = SweepRunner(cache=cache, retries=0)
        with pytest.warns(RuntimeWarning):
            runner.run(experiment, _ToyParams(), seed=0)
        with pytest.warns(RuntimeWarning):
            runner.run(experiment, _ToyParams(), seed=0)
        assert runner.last_stats.cache_hits == 2  # only the successes hit

    def test_duplicate_labels_rejected(self):
        class Duplicated(_ToyExperiment):
            def points(self, params):
                return [Point("same"), Point("same")]

        with pytest.raises(ValueError, match="duplicate"):
            SweepRunner().run(Duplicated(), _ToyParams())

    def test_bad_construction_rejected(self):
        with pytest.raises(ValueError):
            SweepRunner(jobs=0)
        with pytest.raises(ValueError):
            SweepRunner(timeout=0)


# ----------------------------------------------------------------------
# Worker-count determinism on a real registered experiment
# ----------------------------------------------------------------------

class TestWorkerCountDeterminism:
    @pytest.fixture(scope="class")
    def incast_task(self):
        experiment = registry.get("incast")
        params = experiment.make_params(
            "quick", protocol="reno", sender_counts=(2, 3), block_bytes=16_384
        )
        return experiment, params

    def test_parallel_payload_is_bit_identical_to_inline(self, incast_task):
        experiment, params = incast_task
        inline = SweepRunner(jobs=1).run(experiment, params, seed=1)
        pooled = SweepRunner(jobs=2).run(experiment, params, seed=1)
        assert to_jsonable(pooled) == to_jsonable(inline)

    def test_seed_changes_are_visible(self):
        experiment = registry.get("fig1")
        params = experiment.make_params("quick", duration=2.0)
        one = SweepRunner().run(experiment, params, seed=1)
        two = SweepRunner().run(experiment, params, seed=2)
        assert one != two
