"""Tests for the session model and schedule compiler."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.http.openloop import (
    FanoutSpec,
    PoissonArrivals,
    ScheduledRequest,
    SessionConfig,
    SessionSchedule,
    compile_schedule,
)
from repro.http.workload import PT_SIZE_CDF_ANCHORS

SEEDS = st.integers(min_value=0, max_value=2**32 - 1)


class TestFanoutSpec:
    def test_split_partitions_with_ceiling(self):
        spec = FanoutSpec(aggregators=2, leaves=3)
        assert spec.total_leaves == 6
        assert spec.split(6000) == 1000
        assert spec.split(6001) == 1001
        assert spec.split(1) == 1  # never below one byte

    def test_validation(self):
        with pytest.raises(ValueError):
            FanoutSpec(aggregators=0)
        with pytest.raises(ValueError):
            FanoutSpec(leaves=0)


class TestSessionConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SessionConfig(mean_requests=0.5)
        with pytest.raises(ValueError):
            SessionConfig(think_time_s=-1.0)
        with pytest.raises(ValueError):
            SessionConfig(mean_requests=float("nan"))


class TestSessionSchedule:
    def test_rejects_unsorted_times(self):
        with pytest.raises(ValueError):
            SessionSchedule(
                requests=(
                    ScheduledRequest(1.0, 0, 10),
                    ScheduledRequest(0.5, 1, 10),
                ),
                n_sessions=2,
                horizon=2.0,
            )

    def test_rejects_non_positive_sizes(self):
        with pytest.raises(ValueError):
            SessionSchedule(
                requests=(ScheduledRequest(0.0, 0, 0),),
                n_sessions=1,
                horizon=1.0,
            )

    def test_from_requests_sorts_and_counts_sessions(self):
        schedule = SessionSchedule.from_requests(
            [
                ScheduledRequest(0.5, 1, 10),
                ScheduledRequest(0.1, 0, 20),
                ScheduledRequest(0.5, 0, 30),
            ]
        )
        assert [r.time for r in schedule] == [0.1, 0.5, 0.5]
        assert schedule.n_sessions == 2
        assert schedule.horizon >= 0.5

    def test_offered_rate_and_total_bytes(self):
        schedule = SessionSchedule.from_requests(
            [ScheduledRequest(0.0, 0, 100), ScheduledRequest(1.0, 1, 200)],
            horizon=2.0,
        )
        assert schedule.offered_rate() == pytest.approx(1.0)
        assert schedule.total_bytes == 300


class TestCompileSchedule:
    @settings(max_examples=200, deadline=None)
    @given(seed=SEEDS)
    def test_property_same_seed_same_schedule(self, seed):
        """The compiler is pure in (arrivals, config, seed, horizon)."""
        one = compile_schedule(
            PoissonArrivals(80.0), SessionConfig(), seed=seed, horizon=1.0
        )
        two = compile_schedule(
            PoissonArrivals(80.0), SessionConfig(), seed=seed, horizon=1.0
        )
        assert one == two

    @settings(max_examples=100, deadline=None)
    @given(seed=SEEDS)
    def test_property_schedule_well_formed(self, seed):
        schedule = compile_schedule(
            PoissonArrivals(120.0),
            SessionConfig(mean_requests=2.5, think_time_s=0.02),
            seed=seed,
            horizon=1.0,
        )
        times = [r.time for r in schedule]
        assert times == sorted(times)
        assert all(0.0 <= t < 1.0 for t in times)
        lo, hi = PT_SIZE_CDF_ANCHORS[0][0], PT_SIZE_CDF_ANCHORS[-1][0]
        for request in schedule:
            assert math.floor(lo) <= request.size_bytes <= math.ceil(hi)

    def test_different_seeds_differ(self):
        one = compile_schedule(
            PoissonArrivals(80.0), SessionConfig(), seed=1, horizon=1.0
        )
        two = compile_schedule(
            PoissonArrivals(80.0), SessionConfig(), seed=2, horizon=1.0
        )
        assert one != two

    def test_fanout_expands_requests(self):
        """aggregators × leaves backend requests per logical request,
        all at the same instant, sizes partitioning the logical size."""
        base = compile_schedule(
            PoissonArrivals(40.0),
            SessionConfig(fanout=FanoutSpec(aggregators=1, leaves=1)),
            seed=11,
            horizon=1.0,
        )
        fanned = compile_schedule(
            PoissonArrivals(40.0),
            SessionConfig(fanout=FanoutSpec(aggregators=2, leaves=3)),
            seed=11,
            horizon=1.0,
        )
        assert len(fanned) == 6 * len(base)
        base_rows = {(r.time, r.session) for r in base}
        for request in fanned:
            assert (request.time, request.session) in base_rows

    def test_chains_have_multiple_requests(self):
        schedule = compile_schedule(
            PoissonArrivals(50.0),
            SessionConfig(mean_requests=4.0, think_time_s=0.01),
            seed=3,
            horizon=2.0,
        )
        per_session: dict[int, int] = {}
        for request in schedule:
            per_session[request.session] = per_session.get(request.session, 0) + 1
        counts = list(per_session.values())
        assert max(counts) > 1  # some chain continued
        mean = sum(counts) / len(counts)
        assert 2.0 < mean < 6.0  # geometric mean ≈ 4, horizon-truncated

    def test_horizon_truncates_chains(self):
        schedule = compile_schedule(
            PoissonArrivals(200.0),
            SessionConfig(mean_requests=50.0, think_time_s=0.5),
            seed=5,
            horizon=0.5,
        )
        assert all(r.time < 0.5 for r in schedule)

    def test_zero_think_time_stacks_chain(self):
        schedule = compile_schedule(
            PoissonArrivals(30.0),
            SessionConfig(mean_requests=3.0, think_time_s=0.0),
            seed=9,
            horizon=1.0,
        )
        by_session: dict[int, set[float]] = {}
        for request in schedule:
            by_session.setdefault(request.session, set()).add(request.time)
        assert all(len(times) == 1 for times in by_session.values())

    def test_invalid_horizon_rejected(self):
        with pytest.raises(ValueError):
            compile_schedule(
                PoissonArrivals(10.0), SessionConfig(), seed=0, horizon=0.0
            )
