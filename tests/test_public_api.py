"""The public API surface: imports, __all__, and the quickstart path."""

import importlib

import pytest

import repro

SUBPACKAGES = (
    "repro.sim",
    "repro.net",
    "repro.tcp",
    "repro.core",
    "repro.http",
    "repro.metrics",
    "repro.experiments",
)


class TestApiSurface:
    def test_version(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    @pytest.mark.parametrize("module_name", SUBPACKAGES)
    def test_subpackage_all_resolve(self, module_name):
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert getattr(module, name) is not None, f"{module_name}.{name}"

    def test_protocol_registry_exposed(self):
        # "trim" registers lazily — touching the registry must find it.
        assert repro.create_source is not None
        from repro.tcp.factory import source_class

        assert source_class("trim") is repro.TrimSource


class TestQuickstartPath:
    def test_readme_quickstart_runs(self):
        """The code block in README.md works verbatim."""
        from repro import Simulator, TcpConfig, build_star, make_connection
        from repro.experiments.scenarios import (
            packets_per_second,
            path_base_rtt,
        )

        sim = Simulator()
        star = build_star(sim, n_servers=5)
        source, sink = make_connection(
            "trim", sim, star.servers[0], star.frontend, flow_id=1,
            config=TcpConfig(min_rto=0.01),
            capacity_pps=packets_per_second(1e9),
            base_rtt=path_base_rtt([(50e-6, 1e9)] * 2),
        )
        message = source.send_bytes(256 * 1024)
        sim.run(until=1.0)
        assert message.finish_time is not None
        assert source.stats.timeouts == 0
        assert sink.delivered_bytes >= 256 * 1024


class TestModuleDocs:
    @pytest.mark.parametrize("module_name", SUBPACKAGES + ("repro",))
    def test_every_package_documented(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and len(module.__doc__.strip()) > 20
