"""Unit tests for hosts, switches, and ECMP selection."""

import pytest

from repro.net.link import Link
from repro.net.node import Host, Switch, _flow_hash
from repro.net.packet import ACK, DATA, Packet
from repro.net.queues import DropTailQueue
from repro.sim.kernel import Simulator


class StubAgent:
    def __init__(self):
        self.received = []

    def receive_packet(self, pkt):
        self.received.append(pkt)


def wire(sim, a, b, bandwidth=1e9, delay=1e-6):
    link = Link(sim, a, b, bandwidth, delay, DropTailQueue(100))
    a.attach_link(link)
    return link


class TestHost:
    def test_demux_by_flow_id(self):
        sim = Simulator()
        host = Host(sim, 1)
        agent_a, agent_b = StubAgent(), StubAgent()
        host.attach_agent(1, agent_a)
        host.attach_agent(2, agent_b)
        host.receive(Packet(flow_id=2, src=0, dst=1, kind=DATA, seq=0))
        assert not agent_a.received
        assert len(agent_b.received) == 1

    def test_duplicate_flow_attachment_rejected(self):
        host = Host(Simulator(), 1)
        host.attach_agent(1, StubAgent())
        with pytest.raises(ValueError):
            host.attach_agent(1, StubAgent())

    def test_wrong_destination_raises(self):
        host = Host(Simulator(), 1)
        with pytest.raises(RuntimeError):
            host.receive(Packet(flow_id=1, src=0, dst=99, kind=DATA, seq=0))

    def test_unknown_flow_raises(self):
        host = Host(Simulator(), 1)
        with pytest.raises(RuntimeError):
            host.receive(Packet(flow_id=7, src=0, dst=1, kind=DATA, seq=0))

    def test_nic_requires_exactly_one_link(self):
        sim = Simulator()
        host = Host(sim, 1)
        with pytest.raises(ValueError):
            host.nic
        other = Host(sim, 2)
        wire(sim, host, other)
        assert host.nic.dst_node is other

    def test_agent_for(self):
        host = Host(Simulator(), 1)
        agent = StubAgent()
        host.attach_agent(3, agent)
        assert host.agent_for(3) is agent
        assert host.agent_for(4) is None


class TestSwitch:
    def test_forwards_on_destination(self):
        sim = Simulator()
        switch = Switch(sim, 0)
        host = Host(sim, 1)
        host.attach_agent(1, StubAgent())
        wire(sim, switch, host)
        switch.set_route(1, (1,))
        switch.receive(Packet(flow_id=1, src=9, dst=1, kind=DATA, seq=0))
        sim.run()
        assert len(host.agent_for(1).received) == 1

    def test_missing_route_raises(self):
        switch = Switch(Simulator(), 0)
        with pytest.raises(RuntimeError):
            switch.receive(Packet(flow_id=1, src=9, dst=1, kind=DATA, seq=0))

    def test_route_validation(self):
        switch = Switch(Simulator(), 0)
        with pytest.raises(ValueError):
            switch.set_route(1, ())
        with pytest.raises(ValueError):
            switch.set_route(1, (42,))  # no egress to 42


class TestEcmp:
    def _switch_with_two_paths(self, sim):
        switch = Switch(sim, 0)
        left, right = Switch(sim, 1), Switch(sim, 2)
        wire(sim, switch, left)
        wire(sim, switch, right)
        switch.set_route(9, (1, 2))
        return switch

    def test_same_flow_always_same_path(self):
        sim = Simulator()
        switch = self._switch_with_two_paths(sim)
        chosen = set()
        for _ in range(5):
            hop = (1, 2)[_flow_hash(77) % 2]
            chosen.add(hop)
        assert len(chosen) == 1

    def test_flows_spread_across_paths(self):
        picks = {(_flow_hash(f) % 2) for f in range(64)}
        assert picks == {0, 1}

    def test_hash_is_deterministic(self):
        assert _flow_hash(123) == _flow_hash(123)

    def test_hash_spreads_consecutive_ids(self):
        buckets = [0, 0]
        for f in range(1000):
            buckets[_flow_hash(f) % 2] += 1
        # Roughly balanced: no bucket under 35%.
        assert min(buckets) > 350

    def test_single_path_route_skips_hashing(self):
        sim = Simulator()
        switch = Switch(sim, 0)
        host = Host(sim, 5)
        host.attach_agent(8, StubAgent())
        wire(sim, switch, host)
        switch.set_route(5, (5,))
        switch.receive(Packet(flow_id=8, src=0, dst=5, kind=ACK, ack=1))
        sim.run()
        assert len(host.agent_for(8).received) == 1
