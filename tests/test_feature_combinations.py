"""Feature-combination tests: the extensions compose.

Each optional mechanism (SACK, pacing, delayed ACKs, flow control) is
orthogonal machinery in the base sender/sink; these tests pin the
interesting pairings, especially with TCP-TRIM's probing on top.
"""

import pytest

from repro.net.topology import build_star
from repro.sim.kernel import Simulator
from repro.tcp.base import TcpConfig, TcpSink
from repro.tcp.factory import create_source
from tests.helpers import FAST, drop_seqs_once, install_loss, make_pair

CAPACITY = 1e9 / (8 * 1460)


class TestTrimWithSack:
    def test_probe_and_sack_coexist(self):
        config = TcpConfig(sack=True, **FAST)
        sim, star, source, sink = make_pair(
            "trim", config=config, capacity_pps=CAPACITY
        )
        source.send_message(30)
        sim.run(until=0.02)
        install_loss(star.bottleneck, drop_seqs_once({45, 48, 51, 54}))
        sim.schedule_at(0.04, lambda: source.send_message(90))
        sim.run(until=1.0)
        assert sink.next_expected == 120
        assert source.probes_completed == 1
        assert source.stats.timeouts == 0  # SACK repaired the holes

    def test_probe_segments_can_be_sacked(self):
        """Losing the segment before the probes: the probe data lands
        out of order, is SACKed, and recovery still completes."""
        config = TcpConfig(sack=True, **FAST)
        sim, star, source, sink = make_pair(
            "trim", config=config, capacity_pps=CAPACITY
        )
        source.send_message(20)
        sim.run(until=0.02)
        install_loss(star.bottleneck, drop_seqs_once({20}))
        sim.schedule_at(0.04, lambda: source.send_message(30))
        sim.run(until=1.0)
        assert sink.next_expected == 50


class TestTrimWithPacing:
    def test_paced_trim_stream(self):
        config = TcpConfig(pacing=True, **FAST)
        sim, _star, source, sink = make_pair(
            "trim", config=config, capacity_pps=CAPACITY
        )
        total = 0
        for i in range(5):
            total += 30
            sim.schedule_at(0.01 * (i + 1), lambda: source.send_message(30))
        sim.run(until=1.0)
        assert sink.next_expected == total
        assert source.probes_completed >= 3
        assert source.stats.timeouts == 0


class TestDelackWithFlowControl:
    def test_slow_reader_with_delayed_acks(self):
        sim = Simulator()
        star = build_star(sim, 1)
        source = create_source(
            "reno", sim, star.servers[0], flow_id=1,
            dst_id=star.frontend.node_id, config=TcpConfig(**FAST),
        )
        sink = TcpSink(
            sim, star.frontend, flow_id=1,
            delayed_ack=True, delack_timeout=1e-3,
            receive_buffer_segments=16, drain_rate_pps=2000.0,
        )
        msg = source.send_message(100)
        sim.run(until=2.0)
        assert source.all_acked
        assert msg.completion_time > 0.04  # throttled by the reader
        assert sink.acks_sent < 100  # delayed ACKs actually coalesced


class TestSackWithDelack:
    def test_loss_recovery_with_coalesced_acks(self):
        sim = Simulator()
        star = build_star(sim, 1)
        source = create_source(
            "reno", sim, star.servers[0], flow_id=1,
            dst_id=star.frontend.node_id, config=TcpConfig(sack=True, **FAST),
        )
        sink = TcpSink(
            sim, star.frontend, flow_id=1,
            delayed_ack=True, delack_timeout=1e-3,
        )
        install_loss(star.bottleneck, drop_seqs_once({40, 44, 48}))
        source.send_message(100)
        sim.run(until=1.0)
        assert sink.next_expected == 100
        assert source.stats.timeouts == 0


class TestEverythingOn:
    def test_kitchen_sink_configuration(self):
        """SACK + pacing + delayed ACKs + flow control + TRIM, with
        losses: the stream still delivers completely and in order."""
        sim = Simulator()
        star = build_star(sim, 1)
        source = create_source(
            "trim", sim, star.servers[0], flow_id=1,
            dst_id=star.frontend.node_id,
            config=TcpConfig(sack=True, pacing=True, **FAST),
            capacity_pps=CAPACITY,
        )
        sink = TcpSink(
            sim, star.frontend, flow_id=1,
            delayed_ack=True, delack_timeout=1e-3,
            receive_buffer_segments=200, drain_rate_pps=50_000.0,
        )
        install_loss(star.bottleneck, drop_seqs_once({25, 60, 61}))
        total = 0
        for i in range(4):
            total += 40
            sim.schedule_at(0.01 * (i + 1), lambda: source.send_message(40))
        sim.run(until=3.0)
        assert sink.next_expected == total
        assert source.all_acked
