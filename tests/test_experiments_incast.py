"""Tests for the incast experiment harness."""

import pytest

from repro.experiments.incast import IncastParams, run_incast, run_incast_sweep


class TestIncast:
    def test_single_case_structure(self):
        params = IncastParams.quick("reno", block_bytes=16_384, deadline=3.0)
        case = run_incast(params, n_senders=3)
        assert case.n_senders == 3
        assert case.completed == 3
        assert case.goodput_bps > 0
        assert case.batch_completion > 0

    def test_rejects_zero_senders(self):
        with pytest.raises(ValueError):
            run_incast(IncastParams.quick("reno"), n_senders=0)

    def test_sweep_covers_counts(self):
        params = IncastParams.quick("reno", sender_counts=(2, 4),
                                    block_bytes=16_384, deadline=3.0)
        cases = run_incast_sweep(params)
        assert [c.n_senders for c in cases] == [2, 4]

    def test_collapse_signature_for_reno(self):
        params = IncastParams.quick("reno", sender_counts=(2, 16))
        small, large = run_incast_sweep(params)
        # Collapse: goodput at fan-in 16 falls far below fan-in 2.
        assert large.goodput_bps < small.goodput_bps / 3
        assert large.timeouts > 0

    def test_trim_defers_collapse(self):
        params = IncastParams.quick("trim", sender_counts=(16,))
        (case,) = run_incast_sweep(params)
        assert case.timeouts == 0
        assert case.goodput_bps > 0.5e9

    def test_goodput_accounting(self):
        params = IncastParams.quick("reno", sender_counts=(2,),
                                    block_bytes=14_600, deadline=3.0)
        (case,) = run_incast_sweep(params)
        expected = 2 * 14_600 * 8 / case.batch_completion
        assert case.goodput_bps == pytest.approx(expected)
