"""Unit tests for the deterministic fault-injection subsystem.

Covers the plan layer (validation, canonical ordering, intensity
scaling, the JSON wire form), the per-link :class:`LinkFaultState`
window semantics (draws happen *only* inside active windows), and the
:class:`FaultInjector` compiling a plan onto a live topology — glob
resolution, double-arm refusal, surge delegation, outage accounting,
and the invariant monitor's fault audit trail.  End-to-end determinism
of whole chaos traces lives in ``test_golden_faults.py``.
"""

import copy
import math

import pytest

from repro.faults import (
    BackgroundSurge,
    BufferResize,
    Corrupt,
    DelayJitter,
    FaultInjector,
    FaultPlan,
    FaultStats,
    LinkDown,
    LinkFaultState,
    LinkUp,
    LossBurst,
)
from repro.net.packet import DATA, Packet
from repro.net.topology import build_star
from repro.sim.invariants import InvariantMonitor, InvariantViolation
from repro.sim.kernel import Simulator
from repro.sim.randomness import seeded_rng


def pkt(seq=0, size=1000, flow_id=1, src=0, dst=1):
    return Packet(
        flow_id=flow_id, src=src, dst=dst, kind=DATA, seq=seq, size_bytes=size
    )


class TestFaultPlan:
    def test_events_sorted_by_time_with_stable_ties(self):
        down = LinkDown(time=0.2)
        up = LinkUp(time=0.3)
        burst_a = LossBurst(time=0.1, rate=0.5)
        burst_b = LossBurst(time=0.1, rate=0.9)
        plan = FaultPlan.of([up, burst_a, down, burst_b])
        assert plan.events == (burst_a, burst_b, down, up)

    def test_len_bool_iter(self):
        assert not FaultPlan()
        plan = FaultPlan.of([LinkDown(time=0.0)])
        assert plan and len(plan) == 1
        assert list(plan) == [LinkDown(time=0.0)]

    @pytest.mark.parametrize(
        "event",
        [
            LinkDown(time=-1.0),
            LinkDown(time=math.inf),
            LinkDown(time=0.0, link=""),
            LossBurst(time=0.0, rate=0.0),
            LossBurst(time=0.0, rate=1.5),
            LossBurst(time=0.0, duration=0.0),
            Corrupt(time=0.0, rate=0.0),
            DelayJitter(time=0.0, mean_s=0.0),
            DelayJitter(time=0.0, duration=-1.0),
            BufferResize(time=0.0, pkts=0),
            BackgroundSurge(time=0.0, flows=0),
            BackgroundSurge(time=0.0, duration=0.0),
        ],
    )
    def test_invalid_events_rejected(self, event):
        with pytest.raises(ValueError):
            FaultPlan.of([event])

    def test_non_event_rejected(self):
        with pytest.raises(TypeError):
            FaultPlan.of(["link_down"])

    def test_scaled_zero_is_fault_free(self):
        plan = FaultPlan.of([LossBurst(time=0.1), LinkDown(time=0.2)])
        assert plan.scaled(0) == FaultPlan()

    def test_scaled_adjusts_stochastic_magnitudes_only(self):
        plan = FaultPlan.of(
            [
                LossBurst(time=0.1, rate=0.4),
                Corrupt(time=0.2, rate=0.6),
                DelayJitter(time=0.3, mean_s=1e-3),
                BackgroundSurge(time=0.4, flows=3),
                LinkDown(time=0.5),
                BufferResize(time=0.6, pkts=4),
            ]
        )
        doubled = plan.scaled(2.0)
        burst, corrupt, jitter, surge, down, resize = doubled.events
        assert burst.rate == pytest.approx(0.8)
        assert corrupt.rate == 1.0  # clamped
        assert jitter.mean_s == pytest.approx(2e-3)
        assert surge.flows == 6
        assert down == LinkDown(time=0.5)  # discrete events verbatim
        assert resize == BufferResize(time=0.6, pkts=4)

    def test_scaled_keeps_at_least_one_surge_flow(self):
        plan = FaultPlan.of([BackgroundSurge(time=0.0, flows=4)])
        assert plan.scaled(0.01).events[0].flows == 1

    def test_scaled_negative_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan().scaled(-1.0)

    def test_json_round_trip(self):
        plan = FaultPlan.of(
            [
                LossBurst(time=0.1, link="sw->*", rate=0.3, duration=0.05),
                Corrupt(time=0.2, rate=0.02, duration=0.01),
                DelayJitter(time=0.3, mean_s=4e-4, duration=0.1),
                LinkDown(time=0.4, link="sw->frontend"),
                LinkUp(time=0.5, link="sw->frontend"),
                BufferResize(time=0.6, pkts=16),
                BackgroundSurge(time=0.7, flows=2, duration=0.2),
            ]
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_infinite_surge_duration_survives_round_trip(self):
        plan = FaultPlan.of([BackgroundSurge(time=0.1, flows=1)])
        text = plan.to_json()
        assert "Infinity" not in text  # omitted, not serialized
        assert FaultPlan.from_json(text) == plan

    def test_bare_event_list_accepted(self):
        plan = FaultPlan.from_json('[{"kind": "link_down", "time": 0.1}]')
        assert plan.events == (LinkDown(time=0.1),)

    @pytest.mark.parametrize(
        "text, fragment",
        [
            ('"nope"', "object or a list"),
            ('[{"time": 0.1}]', "kind"),
            ('[{"kind": "meteor_strike", "time": 0.1}]', "unknown fault kind"),
            ('[{"kind": "link_down", "time": 0.1, "rate": 0.5}]', "unknown field"),
        ],
    )
    def test_malformed_json_rejected_with_pointer(self, text, fragment):
        with pytest.raises(ValueError, match=fragment):
            FaultPlan.from_json(text)

    def test_dump_and_load(self, tmp_path):
        plan = FaultPlan.of([LossBurst(time=0.1, rate=0.2)])
        path = plan.dump(tmp_path / "plan.json")
        assert FaultPlan.load(path) == plan


class TestLinkFaultState:
    def test_loss_window_drops_and_counts(self):
        state = LinkFaultState(seeded_rng(1))
        state.loss_rate = 1.0
        state.loss_until = 1.0
        assert state.filter_delivery(pkt(), now=0.5) < 0.0
        assert state.stats.injected_drops == 1

    def test_corrupt_window_counts_separately(self):
        state = LinkFaultState(seeded_rng(1))
        state.corrupt_rate = 1.0
        state.corrupt_until = 1.0
        assert state.filter_delivery(pkt(), now=0.5) < 0.0
        assert state.stats.corrupted == 1
        assert state.stats.injected_drops == 0

    def test_jitter_window_returns_positive_delay(self):
        state = LinkFaultState(seeded_rng(1))
        state.jitter_mean = 1e-3
        state.jitter_until = 1.0
        extra = state.filter_delivery(pkt(), now=0.5)
        assert extra > 0.0
        assert state.stats.delayed == 1

    def test_expired_window_is_inert(self):
        state = LinkFaultState(seeded_rng(1))
        state.loss_rate = 1.0
        state.loss_until = 0.5
        assert state.filter_delivery(pkt(), now=0.5) == 0.0
        assert state.stats.injected_drops == 0

    def test_no_active_window_draws_no_randomness(self):
        """The determinism keystone: an idle fault state must not touch
        its stream, or arming an inert plan would shift every later draw."""
        state = LinkFaultState(seeded_rng(1))
        before = copy.deepcopy(state.rng.bit_generator.state)
        for k in range(10):
            assert state.filter_delivery(pkt(seq=k), now=float(k)) == 0.0
        assert state.rng.bit_generator.state == before

    def test_same_seed_same_verdicts(self):
        def verdicts(seed):
            state = LinkFaultState(seeded_rng(seed))
            state.loss_rate = 0.5
            state.loss_until = 100.0
            state.jitter_mean = 1e-3
            state.jitter_until = 100.0
            return [state.filter_delivery(pkt(seq=k), now=1.0) for k in range(50)]

        assert verdicts(7) == verdicts(7)
        assert verdicts(7) != verdicts(8)


class TestFaultStats:
    def test_addition_and_totals(self):
        a = FaultStats(injected_drops=1, corrupted=2, down_drops=3, delayed=4)
        b = FaultStats(injected_drops=10, outages=1, surge_flows=2, evictions=5)
        total = a + b
        assert total.injected_drops == 11
        assert total.corrupted == 2
        assert total.down_drops == 3
        assert total.delayed == 4
        assert total.outages == 1
        assert total.surge_flows == 2
        assert total.evictions == 5
        assert total.total_losses == 11 + 2 + 3


class _NullAgent:
    def __init__(self):
        self.received = []

    def receive_packet(self, pkt):
        self.received.append(pkt)


class TestFaultInjector:
    def make_star(self, **kwargs):
        sim = Simulator()
        star = build_star(sim, 2, **kwargs)
        return sim, star

    def test_glob_resolves_against_link_names(self):
        sim, star = self.make_star()
        plan = FaultPlan.of([LossBurst(time=0.0, link="sw->*")])
        injector = FaultInjector(sim, star.network, plan, seed=1).arm()
        assert set(injector.states) == {
            "sw->frontend",
            "sw->server0",
            "sw->server1",
        }

    def test_unmatched_glob_raises_with_link_inventory(self):
        sim, star = self.make_star()
        plan = FaultPlan.of([LinkDown(time=0.0, link="tor->agg")])
        with pytest.raises(ValueError, match="matches no link"):
            FaultInjector(sim, star.network, plan).arm()

    def test_arm_twice_refused(self):
        sim, star = self.make_star()
        plan = FaultPlan.of([LinkDown(time=0.0, link="sw->frontend")])
        injector = FaultInjector(sim, star.network, plan).arm()
        with pytest.raises(RuntimeError, match="twice"):
            injector.arm()

    def test_surge_without_factory_refused_at_arm(self):
        sim, star = self.make_star()
        plan = FaultPlan.of([BackgroundSurge(time=0.0, flows=1)])
        with pytest.raises(ValueError, match="surge_factory"):
            FaultInjector(sim, star.network, plan).arm()

    def test_surge_factory_called_per_flow_and_stopped(self):
        sim, star = self.make_star()
        started, stopped = [], []

        def factory(index):
            started.append(index)
            return lambda: stopped.append(index)

        plan = FaultPlan.of(
            [BackgroundSurge(time=0.01, flows=2, duration=0.02)]
        )
        injector = FaultInjector(
            sim, star.network, plan, surge_factory=factory
        ).arm()
        sim.run(until=0.05)
        assert started == [0, 1]
        assert stopped == [0, 1]
        assert injector.total_stats().surge_flows == 2

    def test_infinite_surge_never_stopped(self):
        sim, star = self.make_star()
        stopped = []

        def factory(index):
            return lambda: stopped.append(index)

        plan = FaultPlan.of([BackgroundSurge(time=0.01, flows=1)])
        FaultInjector(sim, star.network, plan, surge_factory=factory).arm()
        sim.run(until=1.0)
        assert stopped == []

    def test_outage_drops_in_flight_packet_and_counts(self):
        # tx(1000B @ 1Gbps) = 8 µs, +50 µs propagation ⇒ delivery at
        # 58 µs.  The outage at 30 µs catches the packet mid-flight.
        sim, star = self.make_star()
        frontend_agent = _NullAgent()
        star.frontend.attach_agent(1, frontend_agent)
        plan = FaultPlan.of(
            [
                LinkDown(time=30e-6, link="sw->frontend"),
                LinkUp(time=200e-6, link="sw->frontend"),
            ]
        )
        injector = FaultInjector(sim, star.network, plan, seed=3).arm()
        sim.schedule_at(
            0.0,
            lambda: star.bottleneck.send(
                pkt(dst=star.frontend.node_id)
            ),
        )
        sim.run(until=0.001)
        stats = injector.total_stats()
        assert stats.outages == 1
        assert stats.down_drops == 1
        assert frontend_agent.received == []

    def test_link_up_resumes_queued_backlog(self):
        sim, star = self.make_star()
        frontend_agent = _NullAgent()
        star.frontend.attach_agent(1, frontend_agent)
        plan = FaultPlan.of(
            [
                LinkDown(time=0.0, link="sw->frontend"),
                LinkUp(time=0.001, link="sw->frontend"),
            ]
        )
        FaultInjector(sim, star.network, plan, seed=3).arm()
        # Sent while the carrier is down: queues, survives, delivers
        # only after the LinkUp restarts the transmitter.
        sim.schedule_at(
            0.0005,
            lambda: star.bottleneck.send(pkt(dst=star.frontend.node_id)),
        )
        sim.run(until=0.01)
        assert len(frontend_agent.received) == 1
        assert not star.bottleneck.busy

    def test_buffer_resize_evicts_resident_backlog(self):
        # A slow bottleneck so the backlog is still resident when the
        # shrink fires: 8 ms per packet at 1 Mbps.
        sim, star = self.make_star(
            frontend_bandwidth_bps=1e6, buffer_pkts=8
        )
        frontend_agent = _NullAgent()
        star.frontend.attach_agent(1, frontend_agent)
        plan = FaultPlan.of([BufferResize(time=0.001, link="sw->frontend", pkts=1)])
        injector = FaultInjector(sim, star.network, plan, seed=3).arm()

        def burst():
            for k in range(5):  # 1 in service + 4 queued
                star.bottleneck.send(pkt(seq=k, dst=star.frontend.node_id))

        sim.schedule_at(0.0, burst)
        sim.run(until=0.1)
        stats = injector.total_stats()
        assert stats.evictions == 3  # backlog 4 shrunk to 1
        assert star.bottleneck.queue.stats.evicted == 3
        # in service + the queue head + the post-shrink survivor
        assert len(frontend_agent.received) == 2
        q = star.bottleneck.queue.stats
        assert q.enqueued == q.dequeued + q.evicted + len(star.bottleneck.queue)

    def test_fault_audit_trail_reaches_invariant_monitor(self):
        sim = Simulator(check_invariants=True)
        star = build_star(sim, 2)
        plan = FaultPlan.of(
            [
                LinkDown(time=0.001, link="sw->frontend"),
                LinkUp(time=0.002, link="sw->frontend"),
            ]
        )
        FaultInjector(sim, star.network, plan, seed=3).arm()
        sim.run(until=0.01)
        assert sim.invariants.faults_seen == 2
        time, description = sim.invariants.last_fault
        assert time == pytest.approx(0.002)
        assert "link_up" in description


class TestInvariantFaultHooks:
    def test_on_fault_out_of_order_raises(self):
        monitor = InvariantMonitor(Simulator())
        monitor.on_fault(0.5, "link_down sw->frontend")
        with pytest.raises(InvariantViolation, match="out of order"):
            monitor.on_fault(0.4, "link_up sw->frontend")

    def test_register_queue_is_idempotent_per_object(self):
        from repro.net.queues import DropTailQueue

        monitor = InvariantMonitor(Simulator())
        q = DropTailQueue(4)
        monitor.register_queue(q, name="a")
        monitor.register_queue(q, name="a")
        other = DropTailQueue(4)
        monitor.register_queue(other, name="b")
        assert len(monitor._queues) == 2
