"""Tests for the delayed-ACK receiver option."""

import pytest

from repro.net.topology import build_star
from repro.sim.kernel import Simulator
from repro.tcp.base import TcpConfig, TcpSink
from repro.tcp.factory import create_source
from tests.helpers import FAST, drop_seqs_once, install_loss


def make_delack_pair(delayed=True, ecn_threshold=None, protocol="reno", **src_kwargs):
    sim = Simulator()
    star = build_star(sim, 1, ecn_threshold_pkts=ecn_threshold)
    config = TcpConfig(
        ecn_capable=ecn_threshold is not None, **FAST
    )
    source = create_source(
        protocol, sim, star.servers[0], flow_id=1,
        dst_id=star.frontend.node_id, config=config, **src_kwargs,
    )
    sink = TcpSink(sim, star.frontend, flow_id=1, delayed_ack=delayed,
                   delack_timeout=1e-3)
    return sim, star, source, sink


class TestDelayedAck:
    def test_roughly_one_ack_per_two_segments(self):
        sim, _star, source, sink = make_delack_pair()
        source.send_message(100)
        sim.run(until=1.0)
        assert source.all_acked
        assert sink.acks_sent < 75  # far fewer than 100 immediate ACKs

    def test_immediate_mode_acks_every_segment(self):
        sim, _star, source, sink = make_delack_pair(delayed=False)
        source.send_message(100)
        sim.run(until=1.0)
        assert sink.acks_sent >= 100

    def test_timer_flushes_a_lone_segment(self):
        sim, _star, source, sink = make_delack_pair()
        source.send_message(1)
        sim.run(until=0.1)
        assert source.all_acked  # the 1 ms delack timer fired
        assert sink.acks_sent == 1

    def test_out_of_order_acks_immediately(self):
        sim, star, source, sink = make_delack_pair()
        install_loss(star.bottleneck, drop_seqs_once({5}))
        source.send_message(30)
        sim.run(until=1.0)
        assert source.all_acked
        # Dupacks were generated promptly enough for fast retransmit.
        assert source.stats.fast_retransmits == 1
        assert source.stats.timeouts == 0

    def test_ce_marked_packet_acks_immediately(self):
        sim, star, source, sink = make_delack_pair(
            ecn_threshold=2, protocol="dctcp"
        )
        # Stuff the marking queue so arrivals get CE.
        source.send_message(200)
        sim.run(until=1.0)
        assert source.all_acked

    def test_probe_packets_ack_immediately(self):
        sim, _star, source, sink = make_delack_pair(
            protocol="trim", capacity_pps=85616.0
        )
        source.send_message(20)
        sim.run(until=0.02)
        sim.schedule_at(0.04, lambda: source.send_message(20))
        sim.run(until=0.05)
        # Probe ACKs are echoed immediately, so no probe ever misses its
        # deadline.  (Delayed ACKs do interact with gap detection: a
        # delack-timer stall looks like an OFF period and triggers extra
        # probes — the paper's algorithms assume per-packet ACKs, which
        # is why immediate ACKs are this sink's default.)
        assert source.probes_completed >= 1
        assert source.probes_timed_out == 0

    def test_completion_time_slightly_higher_with_delack(self):
        sim1, _s1, src1, _k1 = make_delack_pair(delayed=False)
        m1 = src1.send_message(50)
        sim1.run(until=1.0)
        sim2, _s2, src2, _k2 = make_delack_pair(delayed=True)
        m2 = src2.send_message(50)
        sim2.run(until=1.0)
        assert m2.completion_time >= m1.completion_time
