"""Behavior tests for T-RACKs (time-based loss detection/recovery)."""

import pytest

from repro.tcp.factory import default_config
from repro.tcp.tracks import TracksSource
from tests.helpers import FAST, drop_seqs_once, install_loss, make_pair


def pair(**kwargs):
    config = default_config("tracks", **FAST)
    return make_pair("tracks", config=config, **kwargs)


class TestDefaults:
    def test_dupack_counting_disabled(self):
        # Recovery must be entered only through time-based detection:
        # the duplicate-ACK threshold is pushed beyond any real window.
        assert default_config("tracks").dupack_threshold >= 1 << 20

    def test_reorder_window_floor_before_samples(self):
        sim, star, source, sink = pair()
        assert source.reo_wnd() == TracksSource.TAIL_TIMER_FLOOR

    def test_reorder_window_is_quarter_min_rtt(self):
        sim, star, source, sink = pair()
        source.send_message(30)
        sim.run(until=0.5)
        assert source.reo_wnd() == pytest.approx(
            source.min_rtt * TracksSource.REO_WND_FRACTION
        )


class TestTimeBasedRecovery:
    def test_single_loss_detected_by_time_not_dupacks(self):
        sim, star, source, sink = pair()
        install_loss(star.servers[0].nic, drop_seqs_once([7]))
        source.send_message(40)
        sim.run(until=1.0)
        assert sink.delivered_segments == 40
        assert source.stats.timeouts == 0
        assert source.time_detected_losses >= 1
        # The dup-ACK fast-retransmit path must have stayed cold: every
        # recovery entry came from the RACK-style comparison.
        assert source.stats.retransmits >= 1

    def test_burst_loss_recovers_without_rto(self):
        sim, star, source, sink = pair()
        install_loss(star.servers[0].nic, drop_seqs_once([10, 11, 12, 13, 14]))
        source.send_message(80)
        sim.run(until=1.5)
        assert sink.delivered_segments == 80
        assert source.stats.timeouts == 0
        assert source.stats.retransmits >= 5

    def test_tail_loss_repaired_by_tail_timer(self):
        sim, star, source, sink = pair()
        # Drop the very last segment: no later data means no ACK advance
        # and no SACK evidence — only the tail timer can catch it before
        # the (already minimal) RTO.
        install_loss(star.servers[0].nic, drop_seqs_once([19]))
        source.send_message(20)
        sim.run(until=1.0)
        assert sink.delivered_segments == 20
        assert source.stats.retransmits >= 1

    def test_send_time_table_is_garbage_collected(self):
        sim, star, source, sink = pair()
        source.send_message(200)
        sim.run(until=2.0)
        assert sink.delivered_segments == 200
        # Cumulative ACKs purge delivered segments' send times; only
        # (at most) the unACKed tail may linger.
        assert len(source._send_time) <= source.config.max_cwnd

    def test_clean_transfer_no_spurious_recovery(self):
        sim, star, source, sink = pair(buffer_pkts=400)
        source.send_message(120)
        sim.run(until=1.0)
        assert sink.delivered_segments == 120
        assert source.stats.retransmits == 0
        assert source.time_detected_losses == 0
