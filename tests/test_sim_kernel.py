"""Unit tests for the discrete-event kernel."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.invariants import InvariantViolation
from repro.sim.kernel import SimulationError, Simulator


class TestScheduling:
    def test_initial_time_is_zero(self):
        assert Simulator().now == 0.0

    def test_schedule_runs_callback_at_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [1.5]

    def test_schedule_at_absolute_time(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(2.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [2.0]

    def test_callback_args_are_passed(self):
        sim = Simulator()
        seen = []
        sim.schedule(0.1, seen.append, 42)
        sim.run()
        assert seen == [42]

    def test_events_run_in_time_order(self):
        sim = Simulator()
        seen = []
        for t in (3.0, 1.0, 2.0):
            sim.schedule(t, seen.append, t)
        sim.run()
        assert seen == [1.0, 2.0, 3.0]

    def test_ties_break_by_scheduling_order(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, seen.append, "first")
        sim.schedule(1.0, seen.append, "second")
        sim.run()
        assert seen == ["first", "second"]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-0.1, lambda: None)

    def test_nan_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(float("nan"), lambda: None)

    def test_infinite_delay_rejected(self):
        # Regression: inf used to be accepted and park an event that
        # could never fire (while still counting as pending).
        with pytest.raises(SimulationError):
            Simulator().schedule(float("inf"), lambda: None)

    def test_schedule_at_non_finite_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule_at(float("inf"), lambda: None)
        with pytest.raises(SimulationError):
            sim.schedule_at(float("nan"), lambda: None)

    def test_non_positive_granularity_rejected(self):
        with pytest.raises(ValueError):
            Simulator(timer_granularity=0.0)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda: None)

    def test_zero_delay_allowed(self):
        sim = Simulator()
        seen = []
        sim.schedule(0.0, seen.append, 1)
        sim.run()
        assert seen == [1]

    def test_events_scheduled_during_run_execute(self):
        sim = Simulator()
        seen = []

        def outer():
            sim.schedule(0.5, seen.append, "inner")

        sim.schedule(1.0, outer)
        sim.run()
        assert seen == ["inner"]
        assert sim.now == 1.5


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        seen = []
        event = sim.schedule(1.0, seen.append, "x")
        event.cancel()
        sim.run()
        assert seen == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        event = sim.schedule(1.0, lambda: None)
        event.cancel()
        event.cancel()
        sim.run()

    def test_cancel_one_of_many(self):
        sim = Simulator()
        seen = []
        keep = sim.schedule(1.0, seen.append, "keep")
        drop = sim.schedule(2.0, seen.append, "drop")
        drop.cancel()
        sim.run()
        assert seen == ["keep"]
        assert not keep.cancelled


class TestTransient:
    def test_transient_runs_and_returns_no_handle(self):
        sim = Simulator()
        seen = []
        assert sim.schedule_transient(1.0, seen.append, "x") is None
        sim.run()
        assert seen == ["x"]

    def test_transient_validation_matches_schedule(self):
        sim = Simulator()
        for delay in (-0.1, float("nan"), float("inf")):
            with pytest.raises(SimulationError):
                sim.schedule_transient(delay, lambda: None)

    def test_pooled_records_fire_exactly_once(self):
        # Recycle the same pooled record many times; every firing must
        # carry its own (fn, args), never a stale pair.
        sim = Simulator()
        seen = []

        def chain(i):
            seen.append(i)
            if i < 50:
                sim.schedule_transient(0.001, chain, i + 1)

        sim.schedule_transient(0.001, chain, 0)
        sim.run()
        assert seen == list(range(51))

    def test_pool_reuse_does_not_leak_cancelled_flag(self):
        # A cancelled regular event is never pooled, and a recycled
        # transient record starts un-cancelled even after heavy mixing.
        sim = Simulator()
        seen = []
        for i in range(20):
            sim.schedule_transient(0.001 + i * 1e-4, seen.append, i)
            sim.schedule(0.001 + i * 1e-4, lambda: None).cancel()
        sim.run()
        assert seen == list(range(20))


class TestRun:
    def test_run_until_stops_clock_at_horizon(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run(until=2.0)
        assert sim.now == 2.0
        assert sim.pending == 1

    def test_run_until_executes_events_at_horizon(self):
        sim = Simulator()
        seen = []
        sim.schedule(2.0, seen.append, "x")
        sim.run(until=2.0)
        assert seen == ["x"]

    def test_run_resumes_after_horizon(self):
        sim = Simulator()
        seen = []
        sim.schedule(5.0, seen.append, "late")
        sim.run(until=2.0)
        sim.run()
        assert seen == ["late"]
        assert sim.now == 5.0

    def test_run_with_empty_heap_keeps_time(self):
        sim = Simulator()
        sim.run()
        assert sim.now == 0.0

    def test_run_until_advances_clock_without_events(self):
        sim = Simulator()
        sim.run(until=3.0)
        assert sim.now == 3.0

    def test_max_events_limits_execution(self):
        sim = Simulator()
        seen = []
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, seen.append, t)
        sim.run(max_events=2)
        assert seen == [1.0, 2.0]

    def test_reentrant_run_rejected(self):
        sim = Simulator()

        def recurse():
            sim.run()

        sim.schedule(1.0, recurse)
        with pytest.raises(SimulationError):
            sim.run()

    def test_events_executed_counter(self):
        sim = Simulator()
        for t in (1.0, 2.0):
            sim.schedule(t, lambda: None)
        sim.run()
        assert sim.events_executed == 2


class TestStepAndPeek:
    def test_step_executes_single_event(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, seen.append, 1)
        sim.schedule(2.0, seen.append, 2)
        assert sim.step()
        assert seen == [1]

    def test_step_returns_false_when_empty(self):
        assert not Simulator().step()

    def test_step_skips_cancelled(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, seen.append, "cancelled").cancel()
        sim.schedule(2.0, seen.append, "live")
        assert sim.step()
        assert seen == ["live"]

    def test_peek_time(self):
        sim = Simulator()
        sim.schedule(3.0, lambda: None)
        sim.schedule(1.0, lambda: None)
        assert sim.peek_time() == 1.0

    def test_peek_time_empty(self):
        assert Simulator().peek_time() is None

    def test_peek_skips_cancelled(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None).cancel()
        sim.schedule(2.0, lambda: None)
        assert sim.peek_time() == 2.0

    def test_pending_counts_live_events(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None).cancel()
        assert sim.pending == 1

    def test_pending_counts_far_future_cancellations(self):
        # Far-future events live in the timer wheel, not the heap; the
        # live counter must track them and their cancellations too.
        sim = Simulator()
        near = sim.schedule(1e-4, lambda: None)
        far = sim.schedule(10.0, lambda: None)
        assert sim.pending == 2 == sim._pending_scan()
        far.cancel()
        assert sim.pending == 1 == sim._pending_scan()
        near.cancel()
        far.cancel()  # idempotent: no double decrement
        assert sim.pending == 0 == sim._pending_scan()

    def test_step_rejects_reentry(self):
        # Regression: step() used to ignore the _running guard, so a
        # handler could silently re-enter the scheduler.
        sim = Simulator()
        sim.schedule(1.0, sim.step)
        with pytest.raises(SimulationError):
            sim.step()

    def test_step_rejected_inside_run(self):
        sim = Simulator()
        sim.schedule(1.0, sim.step)
        with pytest.raises(SimulationError):
            sim.run()

    def test_step_feeds_invariant_monitor(self):
        # Regression: step() used to bypass the invariant monitor that
        # run() honors; both entry points must check identically.
        class _BrokenQueue:
            def __init__(self):
                from repro.net.queues import QueueStats

                self.stats = QueueStats(enqueued=5)

            def __len__(self):
                return 0

        sim = Simulator(check_invariants=True)
        sim.invariants.register_queue(_BrokenQueue(), name="broken")
        sim.schedule(1.0, lambda: None)
        with pytest.raises(InvariantViolation):
            sim.step()

    def test_step_counts_into_monitor(self):
        sim = Simulator(check_invariants=True)
        sim.schedule(1.0, lambda: None)
        assert sim.step()
        assert sim.invariants.events_seen == 1
        assert sim.invariants.checks_run >= 1

    def test_step_executes_wheel_events(self):
        sim = Simulator()
        seen = []
        sim.schedule(10.0, seen.append, "far")  # parked in the wheel
        assert sim.step()
        assert seen == ["far"]
        assert not sim.step()


@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=60))
def test_property_events_always_execute_in_sorted_order(delays):
    sim = Simulator()
    seen = []
    for d in delays:
        sim.schedule(d, lambda t=d: seen.append(t))
    sim.run()
    assert seen == sorted(delays)
    assert sim.now == max(delays)


@given(
    st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=40),
    st.data(),
)
def test_property_cancelled_subset_never_fires(delays, data):
    sim = Simulator()
    seen = []
    events = [sim.schedule(d, lambda t=d: seen.append(t)) for d in delays]
    to_cancel = data.draw(
        st.sets(st.integers(min_value=0, max_value=len(events) - 1))
    )
    for i in to_cancel:
        events[i].cancel()
    sim.run()
    expected = sorted(d for i, d in enumerate(delays) if i not in to_cancel)
    assert seen == expected
