"""End-to-end tests for the dispatch backend's fleet behavior.

Each test runs a real sweep through real worker subprocesses, using the
failure-injection toys in ``dispatch_toys.py`` (importable by workers
via ``extra_sys_path``).  Covered here: byte-identical equivalence with
the serial backend, transient retry after a worker crash, deterministic
retry of a flaky point, quarantine after two distinct workers agree on
a failure, lease expiry for a SIGSTOPped worker, timeout speculation,
and the stats/roster/telemetry plumbing.  The full chaos storm (many
kills, dispatcher kill -9 + resume) lives in test_dispatch_chaos.py.
"""

import json
import os
import signal
import sys
import threading
import time
from pathlib import Path

import pytest

TESTS_DIR = str(Path(__file__).resolve().parent)
# The toys must import as top-level ``dispatch_toys`` — the same name
# workers resolve via ``extra_sys_path`` — so params pickled here
# unpickle there.  (``tests`` is a package, so pytest would otherwise
# import them as ``tests.dispatch_toys``.)
if TESTS_DIR not in sys.path:
    sys.path.insert(0, TESTS_DIR)
import dispatch_toys  # noqa: E402

from repro.experiments.store import to_jsonable  # noqa: E402
from repro.runner import RetryPolicy, SweepCheckpoint, SweepRunner  # noqa: E402
from repro.runner.dispatch.backend import DispatchBackend  # noqa: E402

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


def _backend(tmp_path, **overrides):
    kwargs = dict(
        lease_timeout=5.0,
        heartbeat_interval=0.25,
        quarantine_path=tmp_path / "quarantine.jsonl",
        pid_file=tmp_path / "workers.pid",
        extra_sys_path=(TESTS_DIR,),
    )
    kwargs.update(overrides)
    return DispatchBackend(**kwargs)


def _run(experiment, params, backend, journal, jobs=2, seed=3, **runner_kw):
    runner = SweepRunner(
        jobs=jobs,
        cache=None,
        backend=backend,
        checkpoint=SweepCheckpoint(journal),
        **runner_kw,
    )
    payload = runner.run(experiment, params, seed=seed)
    return payload, runner.last_stats


def _journal_point_lines(path):
    lines = [
        line
        for line in Path(path).read_text().splitlines()
        if line and '"result"' in line
    ]
    return sorted(lines)


def _pids(pid_file):
    """{worker name: pid} from the backend's pid file."""
    table = {}
    for line in Path(pid_file).read_text().splitlines():
        name, _, pid = line.partition(" ")
        if pid.strip().isdigit():
            table[name] = int(pid)
    return table


class TestEquivalence:
    def test_payload_and_journal_byte_identical_to_serial(self, tmp_path):
        params = dispatch_toys.ToyParams(n_points=6)
        serial_journal = tmp_path / "serial.jsonl"
        ref_payload, ref_stats = _run(
            dispatch_toys.ECHO, params, "serial", serial_journal
        )

        dispatch_journal = tmp_path / "dispatch.jsonl"
        backend = _backend(tmp_path)
        payload, stats = _run(
            dispatch_toys.ECHO, params, backend, dispatch_journal
        )
        assert to_jsonable(payload) == to_jsonable(ref_payload)
        # Journal records hold base64 pickles: byte-identical lines mean
        # the results that crossed the wire are byte-identical, not
        # merely equal after unpickling.
        assert _journal_point_lines(dispatch_journal) == _journal_point_lines(
            serial_journal
        )
        assert stats.failures == []
        assert stats.backend == "dispatch"

    def test_journal_header_records_worker_roster(self, tmp_path):
        params = dispatch_toys.ToyParams(n_points=3)
        journal = tmp_path / "sweep.jsonl"
        backend = _backend(tmp_path)
        _run(dispatch_toys.ECHO, params, backend, journal)
        header = json.loads(Path(journal).read_text().splitlines()[0])
        workers = header.get("workers", [])
        assert workers, "journal header should carry the fleet roster"
        assert set(workers) <= set(backend.worker_roster)

    def test_collect_stats_and_log_cover_the_run(self, tmp_path):
        params = dispatch_toys.ToyParams(n_points=4)
        backend = _backend(tmp_path)
        _, stats = _run(
            dispatch_toys.ECHO, params, backend, tmp_path / "sweep.jsonl"
        )
        collected = backend.collect_stats()
        assert collected["workers_spawned"] >= 2
        # One task + one result frame per point is the floor.
        assert collected["frames_sent"] >= 4
        assert collected["frames_received"] >= 4
        counts = backend.log.counts()
        for event in ("spawn", "hello", "lease", "result", "shutdown"):
            assert counts.get(event, 0) >= 1, f"no {event!r} events logged"
        assert counts["result"] >= 4


class TestFailureClasses:
    def test_worker_crash_is_a_transient_retry(self, tmp_path):
        params = dispatch_toys.ToyParams(
            n_points=5, state_dir=str(tmp_path), labels=("p1",)
        )
        backend = _backend(tmp_path)
        payload, stats = _run(
            dispatch_toys.CRASH, params, backend, tmp_path / "sweep.jsonl"
        )
        assert stats.failures == []
        assert len(payload) == 5
        assert stats.transient_retries >= 1
        assert backend.log.counts().get("worker_dead", 0) >= 1

    def test_flaky_point_retries_deterministically_then_succeeds(self, tmp_path):
        params = dispatch_toys.ToyParams(
            n_points=4, state_dir=str(tmp_path), labels=("p2",)
        )
        backend = _backend(tmp_path)
        payload, stats = _run(
            dispatch_toys.FLAKY, params, backend, tmp_path / "sweep.jsonl"
        )
        assert stats.failures == []
        assert len(payload) == 4
        retries = [
            record
            for record in backend.log.records()
            if record.event == "retry" and record.point == "p2"
        ]
        assert retries, "the flaky failure should appear as a retry event"

    def test_quarantine_after_two_distinct_workers_agree(self, tmp_path):
        params = dispatch_toys.ToyParams(
            n_points=5, state_dir=str(tmp_path), labels=("p3",)
        )
        quarantine = tmp_path / "quarantine.jsonl"
        backend = _backend(
            tmp_path,
            retry_policy=RetryPolicy(max_attempts=4, base_delay=0.01),
        )
        payload, stats = _run(
            dispatch_toys.POISON, params, backend, tmp_path / "sweep.jsonl"
        )
        # The sweep completes: the other four points all have results.
        assert sum(1 for item in payload if item is not None) == 4
        assert stats.errors == 1
        assert stats.quarantined == 1
        assert len(stats.failures) == 1
        assert stats.failures[0].kind == "quarantined"
        assert stats.failures[0].label == "p3"

        records = [
            json.loads(line)
            for line in quarantine.read_text().splitlines()
            if line
        ]
        assert len(records) == 1
        record = records[0]
        assert record["schema"] == "repro-quarantine/1"
        assert record["label"] == "p3"
        assert record["signature"] == "ValueError: poison p3"
        assert len(record["workers"]) == 2
        assert len(set(record["workers"])) == 2, "workers must be distinct"
        assert len(record["failures"]) >= 2
        for failure in record["failures"]:
            assert "Traceback" in failure["traceback"]
            assert failure["error_type"] == "ValueError"

    def test_timeout_triggers_speculative_duplicate(self, tmp_path):
        # p1 stalls for 20s on its *first* execution only; the
        # speculative twin finds the marker file and returns at once.
        params = dispatch_toys.ToyParams(
            n_points=4, state_dir=str(tmp_path), labels=("p1",), sleep_s=20.0
        )
        backend = _backend(tmp_path, task_timeout=1.0)
        payload, stats = _run(
            dispatch_toys.STALL, params, backend, tmp_path / "sweep.jsonl"
        )
        assert stats.failures == []
        assert len(payload) == 4
        assert backend.log.counts().get("speculate", 0) >= 1
        assert stats.timeouts >= 1


class TestLeaseExpiry:
    def test_sigstopped_worker_loses_its_lease(self, tmp_path):
        # One worker takes p0, writes its marker, then sleeps.  We
        # freeze that worker with SIGSTOP — its heartbeat thread stops
        # with it — so the lease expires and the point is retried on a
        # respawned worker, which finds the marker and returns fast.
        params = dispatch_toys.ToyParams(
            n_points=3, state_dir=str(tmp_path), labels=("p0",), sleep_s=60.0
        )
        pid_file = tmp_path / "workers.pid"
        backend = _backend(
            tmp_path, lease_timeout=1.5, heartbeat_interval=0.25,
            pid_file=pid_file,
        )
        marker = tmp_path / "p0.stalled"
        stopped = []

        def _freeze_when_stalled():
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline and not marker.exists():
                time.sleep(0.02)
            assert marker.exists(), "stall marker never appeared"
            victim = int(marker.read_text() or "0")
            if not victim:
                # marker written but pid not yet flushed; re-read briefly
                time.sleep(0.1)
                victim = int(marker.read_text())
            os.kill(victim, signal.SIGSTOP)
            stopped.append(victim)

        freezer = threading.Thread(target=_freeze_when_stalled)
        freezer.start()
        try:
            payload, stats = _run(
                dispatch_toys.STALL, params, backend,
                tmp_path / "sweep.jsonl", jobs=2,
            )
        finally:
            freezer.join(timeout=30.0)
            for victim in stopped:
                try:
                    os.kill(victim, signal.SIGCONT)
                    os.kill(victim, signal.SIGKILL)
                except ProcessLookupError:
                    pass
        assert stats.failures == []
        assert len(payload) == 3
        assert stats.lease_expirations >= 1
        assert stats.transient_retries >= 1
        assert backend.log.counts().get("expire", 0) >= 1


class TestReuseAndShutdown:
    def test_backend_is_reopenable_for_a_second_sweep(self, tmp_path):
        backend = _backend(tmp_path)
        params = dispatch_toys.ToyParams(n_points=3)
        first, stats1 = _run(
            dispatch_toys.ECHO, params, backend, tmp_path / "first.jsonl"
        )
        second, stats2 = _run(
            dispatch_toys.ECHO, params, backend, tmp_path / "second.jsonl"
        )
        assert to_jsonable(first) == to_jsonable(second)
        assert stats1.failures == stats2.failures == []

    def test_close_reaps_every_spawned_worker(self, tmp_path):
        pid_file = tmp_path / "workers.pid"
        backend = _backend(tmp_path, pid_file=pid_file)
        params = dispatch_toys.ToyParams(n_points=3)
        _run(dispatch_toys.ECHO, params, backend, tmp_path / "sweep.jsonl")
        deadline = time.monotonic() + 10.0
        live = dict(_pids(pid_file))
        while time.monotonic() < deadline and live:
            for name, pid in list(live.items()):
                try:
                    os.kill(pid, 0)
                except ProcessLookupError:
                    live.pop(name)
            time.sleep(0.05)
        assert not live, f"workers still alive after close: {sorted(live)}"
