"""Tests for the window-based TIMELY baseline."""

import pytest

from repro.tcp.factory import default_config, source_class
from repro.tcp.timely import TimelySource
from tests.helpers import FAST, drop_seqs_once, install_loss, make_pair


def timely_pair(**kwargs):
    config = kwargs.pop("config", default_config("timely", **FAST))
    return make_pair("timely", config=config, **kwargs)


class TestTimely:
    def test_registered(self):
        assert source_class("timely") is TimelySource

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            timely_pair(t_low=2e-3, t_high=1e-3)

    def test_default_thresholds_track_min_rtt(self):
        sim, _star, source, _sink = timely_pair()
        source.send_message(50)
        sim.run(until=0.05)
        assert source.min_rtt < float("inf")
        assert source.t_low == pytest.approx(
            TimelySource.T_LOW_FACTOR * source.min_rtt
        )
        assert source.t_high > source.t_low

    def test_configured_thresholds_win(self):
        _sim, _star, source, _sink = timely_pair(t_low=1e-3, t_high=3e-3)
        assert source.t_low == 1e-3
        assert source.t_high == 3e-3

    def test_completes_clean_transfer(self):
        sim, _star, source, sink = timely_pair()
        source.send_message(400)
        sim.run(until=1.0)
        assert sink.next_expected == 400
        assert source.stats.timeouts == 0

    def test_gradient_decrease_on_rising_rtt(self):
        _sim, _star, source, _sink = timely_pair()
        source.min_rtt = 1e-3
        source.ssthresh = 2.0  # force congestion-avoidance path
        source.cwnd = 40.0
        source._gradient.value = 1.5e-3  # positive normalized gradient 0.5
        source._apply_gradient_update(rtt=1.5e-3)  # between t_low, t_high
        assert source.cwnd == pytest.approx(40.0 * (1 - 0.8 * 0.5))

    def test_additive_increase_below_t_low(self):
        _sim, _star, source, _sink = timely_pair()
        source.min_rtt = 1e-3
        source.ssthresh = 2.0
        source.cwnd = 10.0
        source._apply_gradient_update(rtt=0.5e-3)
        assert source.cwnd == pytest.approx(10.0 + TimelySource.ADD_STEP)

    def test_multiplicative_decrease_above_t_high(self):
        _sim, _star, source, _sink = timely_pair()
        source.min_rtt = 1e-3
        source.ssthresh = 2.0
        source.cwnd = 40.0
        rtt = 5e-3  # 2x t_high
        source._apply_gradient_update(rtt=rtt)
        expected = 40.0 * (1 - 0.8 * (1 - source.t_high / rtt))
        assert source.cwnd == pytest.approx(expected)

    def test_hai_after_negative_streak(self):
        _sim, _star, source, _sink = timely_pair()
        source.min_rtt = 1e-3
        source.ssthresh = 2.0
        source.cwnd = 10.0
        source._gradient.value = source.min_rtt * 0.5  # negative gradient
        for _ in range(TimelySource.HAI_THRESH + 1):
            source._apply_gradient_update(rtt=1.5e-3)
        # The last steps used the HAI increment.
        assert source.cwnd > 10.0 + (TimelySource.HAI_THRESH + 1)

    def test_controls_queue_on_contended_link(self):
        sim, star, source, _sink = timely_pair(frontend_bandwidth=200e6)
        source.send_message(30000)
        peak = {"v": 0}

        def probe():
            peak["v"] = max(peak["v"], star.bottleneck.backlog_pkts)
            if sim.now < 0.3:
                sim.schedule(1e-4, probe)

        sim.schedule_at(0.05, probe)
        sim.run(until=0.3)
        assert peak["v"] < 60  # never rides the 100-packet ceiling
        assert source.stats.timeouts == 0

    def test_loss_recovery_still_works(self):
        sim, star, source, sink = timely_pair()
        install_loss(star.bottleneck, drop_seqs_once({10}))
        source.send_message(40)
        sim.run(until=1.0)
        assert sink.next_expected == 40
