"""Golden telemetry fixture: a TRIM flow's trace is byte-stable per seed.

The flight recorder's determinism contract is stronger than "same
hash": the exported JSONL for a seeded scenario must be *byte
identical* run over run — canonical key order, no whitespace,
shortest-repr floats — because sweep trace files are diffed and
cached by content.  This test drives the golden-trace TRIM scenario
(same constants as ``test_golden_traces.py``) with a ``cwnd,probe``
bus attached and pins the resulting JSONL to a committed fixture.

To re-record after an *intended* behavior change::

    PYTHONPATH=src python -m pytest tests/test_golden_telemetry.py --regen-golden

and commit the updated fixture together with the change that caused it.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.scenarios import packets_per_second, path_base_rtt
from repro.net.topology import build_star
from repro.obs import CwndTimeline, Telemetry, TraceSpec, check_jsonl, write_jsonl
from repro.sim.kernel import Simulator
from repro.tcp.base import TcpSink
from repro.tcp.factory import create_source, default_config

FIXTURE = Path(__file__).parent / "golden" / "telemetry_trim.jsonl"

# Scenario constants — identical to test_golden_traces.py so the two
# fixtures certify the same simulated behavior from two vantage points
# (the wire there, the flight recorder here).
BANDWIDTH = 100e6
FRONTEND_BANDWIDTH = 50e6
DELAY = 100e-6
BUFFER_PKTS = 8
N_SERVERS = 3
TRAINS_PER_FLOW = 3
TRAIN_SEGMENTS = 60
TRAIN_GAP = 0.08
HORIZON = 0.45


def run_traced_trim_scenario() -> list[dict]:
    """The golden TRIM scenario with a cwnd+probe bus; returns rows."""
    telemetry = Telemetry(TraceSpec.parse("cwnd,probe"))
    sim = Simulator(check_invariants=False, telemetry=telemetry)
    star = build_star(
        sim,
        N_SERVERS,
        bandwidth_bps=BANDWIDTH,
        delay_s=DELAY,
        buffer_pkts=BUFFER_PKTS,
        frontend_bandwidth_bps=FRONTEND_BANDWIDTH,
    )
    config = default_config("trim", min_rto=0.01, initial_rto=0.01)
    sources = []
    for i, server in enumerate(star.servers):
        source = create_source(
            "trim",
            sim,
            server,
            star.frontend.node_id,
            flow_id=i,
            config=config,
            capacity_pps=packets_per_second(BANDWIDTH),
            base_rtt=path_base_rtt([(DELAY, BANDWIDTH)] * 2),
        )
        TcpSink(sim, star.frontend, flow_id=i)
        sources.append(source)
    for i, source in enumerate(sources):
        for k in range(TRAINS_PER_FLOW):
            sim.schedule_at(
                0.005 + i * 0.003 + k * TRAIN_GAP,
                lambda s=source: s.send_message(TRAIN_SEGMENTS),
            )
    sim.run(until=HORIZON)
    return telemetry.rows()


def test_golden_telemetry_jsonl_is_byte_identical(tmp_path, regen_golden):
    rows = run_traced_trim_scenario()

    # The fixture must keep certifying the probe machinery: a TRIM trace
    # with no inherit events would pin an empty promise.
    probe_events = [row["event"] for row in rows if row["ch"] == "probe"]
    assert "enter" in probe_events
    assert "inherit" in probe_events
    timeline = CwndTimeline.from_rows(rows)
    assert len(timeline) > 10

    if regen_golden:
        FIXTURE.parent.mkdir(exist_ok=True)
        write_jsonl(rows, FIXTURE)
        return
    if not FIXTURE.exists():
        pytest.fail(
            f"missing golden fixture {FIXTURE}; record it with "
            "'python -m pytest tests/test_golden_telemetry.py "
            "--regen-golden' and commit the result"
        )
    produced = write_jsonl(rows, tmp_path / "telemetry_trim.jsonl")
    assert produced.read_bytes() == FIXTURE.read_bytes(), (
        "the TRIM telemetry trace diverged from the recorded golden "
        "fixture. If this behavior (or schema) change is intended, "
        "re-record with --regen-golden; otherwise an emit point or the "
        "canonical JSONL encoding changed under you."
    )


def test_golden_telemetry_fixture_is_canonical():
    """The committed fixture itself passes the trace --check contract."""
    if not FIXTURE.exists():
        pytest.skip("fixture not recorded yet")
    assert check_jsonl(FIXTURE) > 0
