"""Tests for packet pacing (srtt/cwnd send spacing)."""

import pytest

from repro.metrics.tracing import PacketLogger
from repro.tcp.base import TcpConfig
from tests.helpers import FAST, make_pair


def paced_pair(**kwargs):
    config = kwargs.pop("config", TcpConfig(pacing=True, **FAST))
    return make_pair("reno", config=config, **kwargs)


class TestPacing:
    def test_transfer_still_completes(self):
        sim, _star, source, sink = paced_pair()
        source.send_message(300)
        sim.run(until=1.0)
        assert sink.next_expected == 300
        assert source.all_acked

    def test_sends_are_spaced_not_bursty(self):
        """After the window inflates while app-limited, a paced sender
        spreads the next message across an RTT instead of dumping it."""

        def burstiness(pacing):
            # A larger RTT so srtt/cwnd exceeds the wire serialization
            # time (pacing cannot space packets tighter than the NIC).
            config = TcpConfig(pacing=pacing, **FAST)
            sim, star, source, _sink = make_pair(
                "reno", config=config, delay=500e-6
            )
            logger = PacketLogger(star.network.link_between(
                star.servers[0], star.switch))
            # Grow the window with chatter, then send one 60-seg train.
            for i in range(20):
                sim.schedule_at(0.002 * (i + 1), lambda: source.send_message(2))
            sim.schedule_at(0.06, lambda: source.send_message(60))
            sim.run(until=0.2)
            train = [r.time for r in logger.records if r.seq >= 40]
            gaps = [b - a for a, b in zip(train, train[1:])]
            return min(gaps)

        # Unpaced: back-to-back at wire speed (~11.7 us per segment).
        assert burstiness(pacing=False) < 13e-6
        # Paced: spaced by srtt/cwnd, well above wire spacing.
        assert burstiness(pacing=True) > 13e-6

    def test_pacing_avoids_self_inflicted_nic_drops(self):
        """A 40+ segment window dump overflows the sender's own 30-pkt
        NIC queue; pacing spreads it and loses nothing."""

        def nic_drops(pacing):
            config = TcpConfig(pacing=pacing, **FAST)
            sim, star, source, _sink = make_pair(
                "reno", config=config, buffer_pkts=30, delay=500e-6
            )
            for i in range(40):
                sim.schedule_at(0.002 * (i + 1), lambda: source.send_message(2))
            sim.schedule_at(0.15, lambda: source.send_message(80))
            sim.run(until=0.4)
            nic = star.network.link_between(star.servers[0], star.switch)
            return nic.queue.stats.dropped

        assert nic_drops(pacing=False) > 0
        assert nic_drops(pacing=True) == 0

    def test_pacing_alone_does_not_fix_inheritance(self):
        """The ablation claim: pacing smears the burst but the inherited
        window still overruns the *path*, so contended transfers still
        drop — probing (TRIM) is what shrinks the window itself."""
        from repro.experiments.motivation import (
            MotivationParams,
            run_motivation,
        )
        import repro.experiments.motivation as motivation_mod

        original = motivation_mod.default_config

        def paced_config(protocol, **overrides):
            overrides.setdefault("pacing", True)
            return original(protocol, **overrides)

        motivation_mod.default_config = paced_config
        try:
            paced = run_motivation(MotivationParams.quick("reno"))
        finally:
            motivation_mod.default_config = original
        trim = run_motivation(MotivationParams.quick("trim"))

        # Pacing spreads the burst within an RTT but sends the same
        # volume per RTT: the inherited windows still overrun the path.
        assert paced.dropped_packets > 500
        assert paced.total_timeouts > 0
        assert max(paced.inherited_cwnd) > 200  # window untouched
        assert trim.dropped_packets == 0

    def test_pacing_timer_is_cancellable_state(self):
        sim, _star, source, _sink = paced_pair()
        source.send_message(50)
        sim.run(until=1.0)
        assert source._pace_event is None or source._pace_event.cancelled
