"""Keep-alive pool lifecycle: conservation, reuse order, churn."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.http.openloop import ConnectionPool, PoolStats
from repro.obs import Telemetry, TraceSpec
from repro.sim.kernel import Simulator


def make_pool(sim, **kwargs):
    kwargs.setdefault("idle_timeout_s", 0.5)
    opened = []
    closed = []

    def factory(conn_id):
        opened.append(conn_id)
        return f"conn-{conn_id}"

    pool = ConnectionPool(sim, factory=factory, on_close=closed.append, **kwargs)
    return pool, opened, closed


class TestLifecycle:
    def test_lease_opens_then_reuses_lifo(self):
        sim = Simulator()
        pool, opened, _ = make_pool(sim)
        a, _ = pool.lease()
        b, _ = pool.lease()
        assert (a, b) == (0, 1)
        pool.release(a)
        pool.release(b)
        # LIFO: the most recently released (b) is leased first.
        assert pool.lease()[0] == b
        assert pool.lease()[0] == a
        assert opened == [0, 1]
        assert pool.stats.reused == 2

    def test_idle_timeout_closes_connection(self):
        sim = Simulator()
        pool, _, closed = make_pool(sim, idle_timeout_s=0.1)
        conn_id, _ = pool.lease()
        pool.release(conn_id)
        sim.run(until=0.2)
        assert closed == ["conn-0"]
        assert pool.stats.closed_idle == 1
        assert pool.n_idle == 0
        pool.check_conservation()

    def test_reuse_rearms_idle_timer(self):
        sim = Simulator()
        pool, _, closed = make_pool(sim, idle_timeout_s=0.1)
        conn_id, _ = pool.lease()
        pool.release(conn_id)
        sim.run(until=0.05)
        again, _ = pool.lease()  # cancel pending expiry
        assert again == conn_id
        sim.run(until=0.3)
        assert closed == []  # still leased, timer cancelled
        pool.release(again)
        sim.run(until=0.5)
        assert closed == ["conn-0"]

    def test_max_reuse_retires(self):
        sim = Simulator()
        pool, opened, closed = make_pool(sim, max_reuse=2)
        for _ in range(4):
            conn_id, _ = pool.lease()
            pool.release(conn_id)
        assert pool.stats.closed_retired == 2
        assert len(opened) == 2
        assert len(closed) == 2
        pool.check_conservation()

    def test_discard_closes_without_pooling(self):
        sim = Simulator()
        pool, _, closed = make_pool(sim)
        conn_id, _ = pool.lease()
        pool.discard(conn_id)
        assert closed == ["conn-0"]
        assert pool.n_idle == 0
        pool.check_conservation()

    def test_release_unknown_id_rejected(self):
        sim = Simulator()
        pool, _, _ = make_pool(sim)
        with pytest.raises(ValueError):
            pool.release(7)

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            ConnectionPool(sim, factory=lambda i: i, idle_timeout_s=0.0)
        with pytest.raises(ValueError):
            ConnectionPool(sim, factory=lambda i: i, max_reuse=0)

    def test_reconnect_storm_after_idle_drain(self):
        """A burst over a drained pool opens cold connections en masse —
        the reconnect-storm behavior the paper's premise turns on."""
        sim = Simulator()
        pool, opened, _ = make_pool(sim, idle_timeout_s=0.05)
        first = [pool.lease()[0] for _ in range(8)]
        for conn_id in first:
            pool.release(conn_id)
        sim.run(until=0.2)  # idle horizon passes: pool fully drains
        assert pool.n_idle == 0
        for _ in range(8):
            pool.lease()
        assert len(opened) == 16  # all cold opens, no reuse possible
        assert pool.stats.reused == 0
        pool.check_conservation()


class TestConservationProperty:
    @settings(max_examples=200, deadline=None)
    @given(
        ops=st.lists(st.integers(min_value=0, max_value=3), max_size=60),
        idle_timeout=st.floats(min_value=0.01, max_value=0.3),
        max_reuse=st.one_of(st.none(), st.integers(min_value=1, max_value=5)),
    )
    def test_property_conservation_under_random_ops(
        self, ops, idle_timeout, max_reuse
    ):
        """opened == closed_idle + closed_retired + leased + idle holds
        under any interleaving of lease/release/discard/time."""
        sim = Simulator()
        pool, opened, closed = make_pool(
            sim, idle_timeout_s=idle_timeout, max_reuse=max_reuse
        )
        leased: list[int] = []
        for op in ops:
            if op == 0:
                leased.append(pool.lease()[0])
            elif op == 1 and leased:
                pool.release(leased.pop())
            elif op == 2 and leased:
                pool.discard(leased.pop(0))
            elif op == 3:
                sim.run(until=sim.now + idle_timeout / 2)
            pool.check_conservation()
        sim.run(until=sim.now + 2 * idle_timeout)
        pool.check_conservation()
        # After the idle horizon with no further leases, nothing idles.
        assert pool.n_idle == 0
        assert pool.stats.opened == len(opened)
        assert pool.stats.closed == len(closed)
        assert pool.stats.opened == pool.stats.closed + pool.n_leased


class TestPoolStats:
    def test_merged_sums_counters(self):
        a = PoolStats(opened=2, closed_idle=1, reused=3, leases=5)
        b = PoolStats(opened=1, closed_retired=1, reused=2, leases=3)
        total = a.merged(b)
        assert total.opened == 3
        assert total.closed == 2
        assert total.reused == 5
        assert total.leases == 8
        assert total.reuse_fraction == pytest.approx(5 / 8)

    def test_reuse_fraction_zero_when_unused(self):
        assert PoolStats().reuse_fraction == 0.0


class TestPoolTelemetry:
    def test_lifecycle_emits_pool_channel(self):
        telemetry = Telemetry(TraceSpec.parse("pool"))
        sim = Simulator(telemetry=telemetry)
        pool, _, _ = make_pool(sim, idle_timeout_s=0.1, max_reuse=2)
        conn_id, _ = pool.lease()
        pool.release(conn_id)
        again, _ = pool.lease()
        pool.release(again)  # retired at max_reuse
        other, _ = pool.lease()
        pool.release(other)
        sim.run(until=0.3)  # idle horizon expires the second connection
        events = [(r.event, r.conn) for r in telemetry.records("pool")]
        assert events == [
            ("open", 0),
            ("checkin", 0),
            ("reuse", 0),
            ("close_retired", 0),
            ("open", 1),
            ("checkin", 1),
            ("close_idle", 1),
        ]
        for record in telemetry.records("pool"):
            assert record.leased is not None and record.idle is not None

    def test_occupancy_reflects_post_transition_state(self):
        telemetry = Telemetry(TraceSpec.parse("pool"))
        sim = Simulator(telemetry=telemetry)
        pool, _, _ = make_pool(sim)
        pool.lease()
        record = telemetry.records("pool")[-1]
        assert (record.leased, record.idle) == (1, 0)
