"""Unit tests for the HTTP application drivers."""

import pytest

from repro.http.apps import INFINITE_SEGMENTS, LongTrainSender, ScheduledResponder, burst_at
from repro.http.workload import OnOffEvent
from tests.helpers import make_pair


class TestScheduledResponder:
    def test_emits_messages_at_scheduled_times(self):
        sim, _star, source, sink = make_pair()
        schedule = [OnOffEvent(0.01, 2920), OnOffEvent(0.02, 1460)]
        responder = ScheduledResponder(sim, source, schedule).start()
        sim.run(until=0.1)
        assert len(responder.messages) == 2
        assert responder.messages[0].n_segments == 2
        assert responder.messages[0].submit_time == pytest.approx(0.01)
        assert sink.next_expected == 3

    def test_completed_and_completion_times(self):
        sim, _star, source, _sink = make_pair()
        responder = ScheduledResponder(
            sim, source, [OnOffEvent(0.01, 1460)]
        ).start()
        sim.run(until=0.1)
        assert len(responder.completed) == 1
        assert responder.completion_times()[0] > 0

    def test_unfinished_messages_excluded(self):
        sim, _star, source, _sink = make_pair()
        responder = ScheduledResponder(
            sim, source, [OnOffEvent(0.01, 1460 * 1000)]
        ).start()
        sim.run(until=0.0101)  # barely started
        assert responder.completed == []


class TestLongTrainSender:
    def test_infinite_train_keeps_sending(self):
        sim, _star, source, _sink = make_pair()
        LongTrainSender(sim, source, 0.01).start()
        sim.run(until=0.05)
        assert source.app_limit == INFINITE_SEGMENTS
        assert source.t_seqno > 100

    def test_finite_train_completes(self):
        sim, _star, source, _sink = make_pair()
        sender = LongTrainSender(sim, source, 0.01, segments=50).start()
        sim.run(until=0.1)
        assert sender.message is not None
        assert sender.message.finish_time is not None

    def test_stop_at_truncates(self):
        sim, _star, source, sink = make_pair()
        LongTrainSender(sim, source, 0.0).start().stop_at(0.02)
        sim.run(until=0.1)
        sent = source.t_seqno
        sim.run()
        assert source.t_seqno == sent
        assert sink.next_expected == source.app_limit


class TestBurstAt:
    def test_all_sources_emit_simultaneously(self):
        sim, star, *_ = make_pair(n_servers=3)
        from repro.tcp.factory import create_source
        from repro.tcp.base import TcpConfig, TcpSink
        from tests.helpers import FAST

        sources = []
        for i, server in enumerate(star.servers[1:], start=2):
            src = create_source(
                "reno", sim, server, flow_id=i,
                dst_id=star.frontend.node_id, config=TcpConfig(**FAST),
            )
            TcpSink(sim, star.frontend, flow_id=i)
            sources.append(src)
        messages = burst_at(sim, sources, time=0.05, segments=10)
        sim.run(until=0.2)
        assert len(messages) == 2
        assert all(m.submit_time == pytest.approx(0.05) for m in messages)
        assert all(m.finish_time is not None for m in messages)

    def test_segment_validation(self):
        sim, _star, source, _sink = make_pair()
        with pytest.raises(ValueError):
            burst_at(sim, [source], time=0.01, segments=0)
