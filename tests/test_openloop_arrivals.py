"""Property tests for the open-loop arrival processes.

The workload-realism contract, pinned with hypothesis:

* empirical arrival rates converge to the process's ``mean_rate()``;
* MMPP inter-arrival variability (CV) strictly exceeds Poisson's;
* sampling is a pure function of (spec, seed) — bit-identical lists;
* the ``--arrivals`` grammar round-trips through ``to_string()``.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.http.openloop import (
    ArrivalProcess,
    DiurnalArrivals,
    MmppArrivals,
    PoissonArrivals,
    parse_arrivals,
)

RATES = st.floats(min_value=5.0, max_value=500.0)
SEEDS = st.integers(min_value=0, max_value=2**32 - 1)


def _cv(times):
    gaps = np.diff(np.asarray(times))
    return float(np.std(gaps) / np.mean(gaps))


class TestRateConvergence:
    @settings(max_examples=200, deadline=None)
    @given(rate=RATES, seed=SEEDS)
    def test_property_poisson_rate_converges(self, rate, seed):
        """Empirical rate over a long horizon lands near λ.

        A Poisson count over horizon T has σ = sqrt(λT); eight sigma
        of slack keeps the 200-example run deterministic-stable while
        still catching any systematic rate bias.
        """
        horizon = max(2.0, 400.0 / rate)
        times = PoissonArrivals(rate).sample_times(
            np.random.default_rng(seed), horizon
        )
        expected = rate * horizon
        assert abs(len(times) - expected) <= 8.0 * math.sqrt(expected) + 1

    @settings(max_examples=50, deadline=None)
    @given(seed=SEEDS)
    def test_property_mmpp_rate_converges(self, seed):
        process = MmppArrivals(
            rate_on=400.0, rate_off=20.0, mean_on=0.05, mean_off=0.15
        )
        horizon = 20.0
        expected = process.mean_rate() * horizon
        # MMPP counts are over-dispersed relative to Poisson: a single
        # 20 s draw has σ ≈ 9% of the mean, so a one-draw 30% band is
        # only ~3.4σ and fails for unlucky seeds.  Averaging five
        # independent draws cuts σ to ~4%, making the same 30% band a
        # ~7.6σ bound — deterministic-stable yet still rate-pinning.
        counts = [
            len(process.sample_times(np.random.default_rng([seed, k]), horizon))
            for k in range(5)
        ]
        mean_count = sum(counts) / len(counts)
        assert abs(mean_count - expected) <= 0.30 * expected

    @settings(max_examples=50, deadline=None)
    @given(seed=SEEDS)
    def test_property_diurnal_rate_converges(self, seed):
        process = DiurnalArrivals(base=50.0, peak=400.0, period=1.0)
        horizon = 10.0  # whole periods, so mean_rate() is exact
        times = process.sample_times(np.random.default_rng(seed), horizon)
        expected = process.mean_rate() * horizon
        assert abs(len(times) - expected) <= 8.0 * math.sqrt(expected) + 1


class TestBurstiness:
    @settings(max_examples=100, deadline=None)
    @given(seed=SEEDS)
    def test_property_mmpp_cv_exceeds_poisson(self, seed):
        """ON/OFF modulation makes inter-arrivals over-dispersed: the
        MMPP coefficient of variation beats the same-mean Poisson's."""
        rng = np.random.default_rng(seed)
        mmpp = MmppArrivals(
            rate_on=500.0, rate_off=10.0, mean_on=0.05, mean_off=0.25
        )
        mmpp_times = mmpp.sample_times(rng, 20.0)
        poisson_times = PoissonArrivals(mmpp.mean_rate()).sample_times(
            np.random.default_rng(seed), 20.0
        )
        assert len(mmpp_times) > 100 and len(poisson_times) > 100
        assert _cv(mmpp_times) > _cv(poisson_times)

    def test_poisson_cv_is_about_one(self):
        times = PoissonArrivals(200.0).sample_times(
            np.random.default_rng(7), 50.0
        )
        assert _cv(times) == pytest.approx(1.0, abs=0.05)


class TestDeterminismAndStructure:
    @settings(max_examples=200, deadline=None)
    @given(rate=RATES, seed=SEEDS)
    def test_property_same_seed_same_times(self, rate, seed):
        spec = PoissonArrivals(rate)
        one = spec.sample_times(np.random.default_rng(seed), 2.0)
        two = spec.sample_times(np.random.default_rng(seed), 2.0)
        assert one == two

    @settings(max_examples=100, deadline=None)
    @given(seed=SEEDS)
    def test_property_times_sorted_and_in_window(self, seed):
        for process in (
            PoissonArrivals(150.0),
            MmppArrivals(rate_on=300.0, rate_off=30.0, mean_on=0.1, mean_off=0.2),
            DiurnalArrivals(base=40.0, peak=300.0, period=0.5),
        ):
            times = process.sample_times(
                np.random.default_rng(seed), 1.5, start=0.25
            )
            assert times == sorted(times)
            assert all(0.25 <= t < 1.75 for t in times)

    def test_scaled_multiplies_mean_rate(self):
        for process in (
            PoissonArrivals(100.0),
            MmppArrivals(rate_on=300.0, rate_off=30.0, mean_on=0.1, mean_off=0.2),
            DiurnalArrivals(base=40.0, peak=300.0, period=0.5),
        ):
            assert process.scaled(2.5).mean_rate() == pytest.approx(
                2.5 * process.mean_rate()
            )

    def test_protocol_conformance(self):
        for process in (
            PoissonArrivals(1.0),
            MmppArrivals(rate_on=2.0, rate_off=1.0, mean_on=1.0, mean_off=1.0),
            DiurnalArrivals(base=1.0, peak=2.0, period=1.0),
        ):
            assert isinstance(process, ArrivalProcess)


class TestSpecGrammar:
    @settings(max_examples=200, deadline=None)
    @given(rate=st.floats(min_value=0.001, max_value=1e6))
    def test_property_poisson_round_trip(self, rate):
        spec = PoissonArrivals(rate)
        assert parse_arrivals(spec.to_string()) == spec

    def test_all_kinds_round_trip(self):
        for text in (
            "poisson:rate=200",
            "mmpp:rate_on=500,rate_off=20,mean_on=0.1,mean_off=0.4",
            "diurnal:base=50,peak=400,period=1.0",
        ):
            process = parse_arrivals(text)
            assert parse_arrivals(process.to_string()) == process

    def test_whitespace_tolerated(self):
        assert parse_arrivals(" poisson : rate = 5 ".replace(" : ", ":")) == (
            PoissonArrivals(5.0)
        )

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "poisson",
            "poisson:",
            "poisson:rate",
            "poisson:rate=abc",
            "poisson:rate=0",
            "poisson:rate=-5",
            "poisson:rate=1,rate=2",
            "poisson:rate=1,burst=2",
            "mmpp:rate_on=10,rate_off=20,mean_on=0.1,mean_off=0.1",
            "mmpp:rate_on=10",
            "uniform:rate=5",
            "diurnal:base=100,peak=50,period=1",
        ],
    )
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_arrivals(bad)

    def test_validation_at_construction(self):
        with pytest.raises(ValueError):
            PoissonArrivals(0.0)
        with pytest.raises(ValueError):
            PoissonArrivals(float("inf"))
        with pytest.raises(ValueError):
            MmppArrivals(rate_on=1.0, rate_off=2.0, mean_on=1.0, mean_off=1.0)
        with pytest.raises(ValueError):
            DiurnalArrivals(base=2.0, peak=1.0, period=1.0)
        with pytest.raises(ValueError):
            PoissonArrivals(5.0).sample_times(np.random.default_rng(0), 0.0)
        with pytest.raises(ValueError):
            PoissonArrivals(5.0).scaled(0.0)
