"""simlint: a positive and a negative fixture per rule, plus the CLI.

Every rule gets at least one snippet it must flag and one adjacent
snippet it must leave alone (the false-positive guard).  The suite ends
with the self-check: the shipped ``src/repro`` tree lints clean.
"""

from pathlib import Path

import pytest

import repro
from repro.lint import Finding, all_rules, lint_paths, lint_source
from repro.lint.__main__ import main as lint_main


def rule_ids(findings):
    return sorted({f.rule_id for f in findings})


class TestFramework:
    def test_all_rules_registered_and_ordered(self):
        rules = all_rules()
        ids = [r.id for r in rules]
        assert ids == sorted(ids)
        assert ids == [f"SIM{n:03d}" for n in range(1, 18)]
        for rule in rules:
            assert rule.summary and rule.fixit

    def test_finding_render_includes_fixit(self):
        finding = Finding("a.py", 3, 0, "SIM001", "boom", fixit="use seeded_rng")
        text = finding.render()
        assert "a.py:3:0: SIM001 boom" in text
        assert "use seeded_rng" in text

    def test_select_restricts_rules(self):
        src = "import random\ndef f(x=[]):\n    return x\n"
        assert rule_ids(lint_source(src)) == ["SIM001", "SIM004"]
        assert rule_ids(lint_source(src, select=["SIM004"])) == ["SIM004"]


class TestSuppression:
    def test_trailing_comment_suppresses(self):
        src = "import random  # deterministic shim  # simlint: disable=SIM001\n"
        assert lint_source(src) == []

    def test_preceding_comment_line_suppresses_next_line(self):
        src = (
            "# The tie-break must be exact here; see Event.__lt__.\n"
            "# simlint: disable=SIM003\n"
            "ok = a.time == b.time\n"
        )
        assert lint_source(src) == []

    def test_disable_all(self):
        src = "import random  # fixture needs raw stdlib  # simlint: disable=all\n"
        assert lint_source(src) == []

    def test_suppression_is_per_line(self):
        src = (
            "import random  # shim  # simlint: disable=SIM001\n"
            "import random\n"
        )
        findings = lint_source(src)
        assert [f.line for f in findings] == [2]

    def test_wrong_id_does_not_suppress(self):
        src = "import random  # shim  # simlint: disable=SIM002\n"
        assert rule_ids(lint_source(src)) == ["SIM001"]


class TestSim001Randomness:
    def test_flags_stdlib_random_import(self):
        assert rule_ids(lint_source("import random\n")) == ["SIM001"]
        assert rule_ids(lint_source("from random import choice\n")) == ["SIM001"]

    def test_flags_numpy_generator_construction_through_alias(self):
        src = "import numpy as np\nrng = np.random.default_rng(7)\n"
        findings = lint_source(src)
        assert rule_ids(findings) == ["SIM001"]
        assert findings[0].line == 2

    def test_flags_global_numpy_draws(self):
        src = "import numpy\nx = numpy.random.uniform(0, 1)\n"
        assert rule_ids(lint_source(src)) == ["SIM001"]

    def test_allows_seeded_rng_helper(self):
        src = (
            "from repro.sim.randomness import seeded_rng\n"
            "rng = seeded_rng(7)\n"
            "x = rng.uniform(0, 1)\n"
        )
        assert lint_source(src) == []

    def test_randomness_home_is_exempt(self):
        src = "import numpy as np\nrng = np.random.default_rng(7)\n"
        assert lint_source(src, path="repro/sim/randomness.py") == []

    def test_generator_annotation_is_not_a_call(self):
        src = (
            "import numpy as np\n"
            "def f(rng: np.random.Generator) -> float:\n"
            "    return float(rng.uniform())\n"
        )
        assert lint_source(src) == []


class TestSim002WallClock:
    def test_flags_time_time(self):
        src = "import time\nt = time.time()\n"
        assert rule_ids(lint_source(src)) == ["SIM002"]

    def test_flags_datetime_now_through_from_import(self):
        src = "from datetime import datetime\nt = datetime.now()\n"
        assert rule_ids(lint_source(src)) == ["SIM002"]

    def test_perf_counter_is_permitted(self):
        src = "import time\nt = time.perf_counter()\n"
        assert lint_source(src) == []


class TestSim003TimeEquality:
    def test_flags_equality_on_time_attributes(self):
        src = "def same(a, b):\n    return a.time == b.time\n"
        assert rule_ids(lint_source(src)) == ["SIM003"]

    def test_flags_inequality_on_time_suffix(self):
        src = "def f(m, t):\n    return m.finish_time != t\n"
        assert rule_ids(lint_source(src)) == ["SIM003"]

    def test_ordering_comparisons_are_fine(self):
        src = "def f(a, b):\n    return a.time <= b.time\n"
        assert lint_source(src) == []

    def test_none_checks_are_fine(self):
        src = (
            "def f(m):\n"
            "    return m.finish_time is not None and m.finish_time == None\n"
        )
        assert lint_source(src) == []


class TestSim004MutableDefault:
    def test_flags_literal_list_default(self):
        src = "def f(x=[]):\n    return x\n"
        assert rule_ids(lint_source(src)) == ["SIM004"]

    def test_flags_dict_call_and_kwonly_default(self):
        src = "def f(*, cache=dict()):\n    return cache\n"
        assert rule_ids(lint_source(src)) == ["SIM004"]

    def test_none_and_tuple_defaults_are_fine(self):
        src = "def f(x=None, y=(), z=1):\n    return x, y, z\n"
        assert lint_source(src) == []


class TestSim005ModuleMutableState:
    def test_flags_module_dict_in_tcp(self):
        src = "CACHE = {}\n"
        findings = lint_source(src, path="repro/tcp/state.py")
        assert rule_ids(findings) == ["SIM005"]

    def test_flags_annotated_list_in_net(self):
        src = "PENDING: list = []\n"
        assert rule_ids(lint_source(src, path="repro/net/state.py")) == ["SIM005"]

    def test_out_of_scope_paths_are_fine(self):
        src = "CACHE = {}\n"
        assert lint_source(src, path="repro/metrics/state.py") == []

    def test_immutable_and_dunder_are_fine(self):
        src = "__all__ = ['a']\nTABLE = (1, 2)\nNAMES = frozenset({'x'})\n"
        assert lint_source(src, path="repro/tcp/consts.py") == []


class TestSim006HandlerReentrancy:
    BAD = (
        "class Driver:\n"
        "    def arm(self):\n"
        "        self.sim.schedule(1.0, self.handler)\n"
        "    def handler(self):\n"
        "        self.sim.run()\n"
    )

    def test_flags_run_inside_scheduled_handler(self):
        findings = lint_source(self.BAD)
        assert rule_ids(findings) == ["SIM006"]
        assert "handler" in findings[0].message

    def test_top_level_run_is_fine(self):
        src = (
            "def drive(sim, cb):\n"
            "    sim.schedule(1.0, cb)\n"
            "    sim.run(until=1.0)\n"
        )
        assert lint_source(src) == []


class TestSim007ExperimentContract:
    def test_flags_partial_subclass(self):
        src = (
            "from repro.experiments.base import Experiment\n"
            "class Broken(Experiment):\n"
            "    def points(self, params):\n"
            "        return []\n"
        )
        findings = lint_source(src)
        assert rule_ids(findings) == ["SIM007"]
        assert "run_point" in findings[0].message
        assert "reduce" in findings[0].message

    def test_full_subclass_is_fine(self):
        src = (
            "from repro.experiments.base import Experiment\n"
            "class Fine(Experiment):\n"
            "    def points(self, params):\n"
            "        return []\n"
            "    def run_point(self, params, point, seed):\n"
            "        return None\n"
            "    def reduce(self, params, points, results):\n"
            "        return list(results)\n"
        )
        assert lint_source(src) == []

    def test_unrelated_class_is_fine(self):
        src = "class Helper:\n    pass\n"
        assert lint_source(src) == []


class TestSim008FaultBypass:
    def test_flags_direct_deliver_call(self):
        src = "def chaos(link, pkt):\n    link._deliver(pkt)\n"
        findings = lint_source(src, path="repro/experiments/chaos.py")
        assert rule_ids(findings) == ["SIM008"]
        assert "FaultPlan" in findings[0].fixit

    def test_flags_capacity_write_and_augment(self):
        src = "def shrink(queue):\n    queue.capacity_pkts = 2\n"
        assert rule_ids(
            lint_source(src, path="repro/experiments/chaos.py")
        ) == ["SIM008"]
        src = "def shrink(queue):\n    queue.capacity_pkts -= 4\n"
        assert rule_ids(
            lint_source(src, path="repro/experiments/chaos.py")
        ) == ["SIM008"]

    def test_self_receiver_is_fine(self):
        # TcpSink has its own _deliver; queues assign their own capacity.
        src = (
            "class Sink:\n"
            "    def receive(self, pkt):\n"
            "        self._deliver(pkt)\n"
            "    def grow(self):\n"
            "        self.capacity_pkts = 8\n"
        )
        assert lint_source(src, path="repro/tcp/sink.py") == []

    def test_net_and_faults_layers_are_exempt(self):
        src = "def deliver(link, pkt):\n    link._deliver(pkt)\n"
        assert lint_source(src, path="repro/net/link.py") == []
        src = "def shrink(queue):\n    queue.capacity_pkts = 2\n"
        assert lint_source(src, path="repro/faults/injector.py") == []

    def test_sanctioned_resize_is_fine(self):
        src = "def shrink(queue):\n    queue.resize(2)\n"
        assert lint_source(src, path="repro/experiments/chaos.py") == []


class TestSim009DeliveryHookSwap:
    def test_flags_hook_swap_on_another_object(self):
        src = (
            "def attach(link, fn):\n"
            "    prev = link.on_deliver\n"
            "    link.on_deliver = fn\n"
        )
        findings = lint_source(src, path="repro/metrics/tracing.py")
        assert rule_ids(findings) == ["SIM009"]
        assert "add_observer" in findings[0].fixit

    def test_flags_annotated_and_augmented_writes(self):
        src = "def f(link, fn):\n    link.on_deliver: object = fn\n"
        assert rule_ids(
            lint_source(src, path="repro/experiments/probe.py")
        ) == ["SIM009"]

    def test_self_assignment_is_fine(self):
        # The owner initializing its own hook is the implementation.
        src = (
            "class Link:\n"
            "    def __init__(self):\n"
            "        self.on_deliver = None\n"
        )
        assert lint_source(src, path="repro/metrics/tracing.py") == []

    def test_reads_and_observer_registration_are_fine(self):
        src = (
            "def attach(link, fn):\n"
            "    hook = link.on_deliver\n"
            "    link.add_observer(fn)\n"
            "    return hook\n"
        )
        assert lint_source(src, path="repro/metrics/tracing.py") == []

    def test_net_and_obs_layers_are_exempt(self):
        src = "def wire(link, fn):\n    link.on_deliver = fn\n"
        assert lint_source(src, path="repro/net/link.py") == []
        assert lint_source(src, path="repro/obs/capture.py") == []


class TestSim010RawExecutor:
    def test_flags_direct_construction(self):
        src = (
            "import concurrent.futures\n"
            "def fan_out(n):\n"
            "    return concurrent.futures.ProcessPoolExecutor(max_workers=n)\n"
        )
        findings = lint_source(src, path="repro/runner/engine.py")
        assert rule_ids(findings) == ["SIM010"]
        assert "create_backend" in findings[0].fixit

    def test_flags_from_import_construction(self):
        src = (
            "from concurrent.futures import ProcessPoolExecutor\n"
            "def fan_out(n):\n"
            "    return ProcessPoolExecutor(n)\n"
        )
        assert rule_ids(
            lint_source(src, path="repro/experiments/custom.py")
        ) == ["SIM010"]

    def test_backends_package_is_exempt(self):
        src = (
            "import concurrent.futures\n"
            "def make(n):\n"
            "    return concurrent.futures.ProcessPoolExecutor(max_workers=n)\n"
        )
        assert lint_source(src, path="repro/runner/backends/pool.py") == []

    def test_other_executors_are_fine(self):
        # ThreadPoolExecutor is not the sweep seam (tests use it for
        # deterministic straggler timing via LegacyExecutorBackend).
        src = (
            "import concurrent.futures\n"
            "def make(n):\n"
            "    return concurrent.futures.ThreadPoolExecutor(n)\n"
        )
        assert lint_source(src, path="repro/runner/engine.py") == []


class TestSim017RawSocket:
    def test_flags_direct_socket(self):
        src = (
            "import socket\n"
            "def dial(host, port):\n"
            "    return socket.socket(socket.AF_INET, socket.SOCK_STREAM)\n"
        )
        findings = lint_source(src, path="repro/obs/export.py")
        assert rule_ids(findings) == ["SIM017"]
        assert "frames" in findings[0].fixit

    def test_flags_create_connection_and_server(self):
        src = (
            "import socket\n"
            "def up(addr):\n"
            "    a = socket.create_connection(addr)\n"
            "    b = socket.create_server(addr)\n"
            "    return a, b\n"
        )
        findings = lint_source(src, path="repro/experiments/custom.py")
        assert rule_ids(findings) == ["SIM017"]
        assert len(findings) == 2

    def test_dispatch_package_is_exempt(self):
        src = (
            "import socket\n"
            "def listen():\n"
            "    return socket.create_server(('127.0.0.1', 0))\n"
        )
        assert lint_source(src, path="repro/runner/dispatch/frames.py") == []

    def test_non_constructor_socket_use_is_fine(self):
        src = (
            "import socket\n"
            "def name():\n"
            "    return socket.gethostname()\n"
        )
        assert lint_source(src, path="repro/runner/engine.py") == []


class TestCli:
    def test_nonzero_exit_and_fixit_on_findings(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\n")
        assert lint_main([str(bad)]) == 1
        out = capsys.readouterr().out
        assert "SIM001" in out
        assert "fix:" in out
        assert "1 finding" in out

    def test_zero_exit_on_clean_tree(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert lint_main([str(clean)]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_select_option(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\ndef f(x=[]):\n    return x\n")
        assert lint_main([str(bad), "--select", "SIM002"]) == 0
        assert lint_main([str(bad), "--select", "SIM004"]) == 1

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for n in range(1, 18):
            assert f"SIM{n:03d}" in out

    def test_directory_walk(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        (pkg / "a.py").write_text("import random\n")
        (pkg / "b.py").write_text("import time\nt = time.time()\n")
        findings = lint_paths([str(pkg)])
        assert rule_ids(findings) == ["SIM001", "SIM002"]


class TestSelfCheck:
    def test_shipped_package_lints_clean(self):
        """The guard the CI lint job enforces: src/repro has no findings."""
        package_dir = Path(repro.__file__).parent
        findings = lint_paths([str(package_dir)])
        assert findings == [], "\n".join(f.render() for f in findings)
