"""Tests for the request/response HttpSession."""

import pytest

from repro.http.apps import HttpSession
from repro.net.topology import build_star
from repro.sim.kernel import Simulator
from repro.tcp.base import TcpConfig
from tests.helpers import FAST


def make_session(protocol="reno", n_servers=1, service_time=0.0, **kwargs):
    sim = Simulator()
    star = build_star(sim, n_servers)
    session = HttpSession(
        sim, star.frontend, star.servers[0], protocol,
        request_flow_id=100, response_flow_id=200,
        config=TcpConfig(**FAST), service_time=service_time, **kwargs,
    )
    return sim, star, session


class TestHttpSession:
    def test_request_produces_response(self):
        sim, _star, session = make_session()
        exchange = session.request(response_bytes=10_000)
        sim.run(until=0.5)
        assert exchange.response is not None
        assert exchange.response.finish_time is not None
        assert exchange.completion_time > 0

    def test_completion_includes_request_leg(self):
        sim, _star, session = make_session()
        exchange = session.request(response_bytes=1460)
        sim.run(until=0.5)
        # RTT for request + RTT for response: strictly more than one RTT.
        base_rtt = 4 * 50e-6
        assert exchange.completion_time > base_rtt

    def test_service_time_adds_latency(self):
        sim1, _s1, fast = make_session(service_time=0.0)
        e1 = fast.request(1460)
        sim1.run(until=0.5)
        sim2, _s2, slow = make_session(service_time=0.01)
        e2 = slow.request(1460)
        sim2.run(until=0.5)
        assert e2.completion_time >= e1.completion_time + 0.009

    def test_sequential_requests_reuse_the_connection(self):
        sim, _star, session = make_session()
        done = []

        def next_request(exchange):
            done.append(exchange)
            if len(done) < 5:
                session.request(5_000, on_complete=next_request)

        session.request(5_000, on_complete=next_request)
        sim.run(until=1.0)
        assert len(done) == 5
        assert len(session.completed) == 5
        # One persistent response connection carried all five responses.
        assert session.response_source.stats.segments_sent >= 5 * 4

    def test_trim_session_probes_between_responses(self):
        sim, _star, session = make_session(
            protocol="trim", capacity_pps=85616.0
        )
        for i in range(4):
            sim.schedule_at(
                0.02 * (i + 1), lambda: session.request(30_000)
            )
        sim.run(until=0.5)
        assert len(session.completed) == 4
        # Requests arrive after idle gaps, so the response channel probed.
        assert session.response_source.probes_completed >= 2

    def test_completion_times_list(self):
        sim, _star, session = make_session()
        session.request(1460)
        session.request(1460)
        sim.run(until=0.5)
        times = session.completion_times()
        assert len(times) == 2
        assert all(t > 0 for t in times)

    def test_validation(self):
        sim, _star, session = make_session()
        with pytest.raises(ValueError):
            session.request(0)
        with pytest.raises(ValueError):
            make_session(service_time=-1.0)

    def test_unfinished_exchange_raises_on_completion_time(self):
        _sim, _star, session = make_session()
        exchange = session.request(1460)
        with pytest.raises(ValueError):
            exchange.completion_time
