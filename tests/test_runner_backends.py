"""The SweepBackend seam: backend equivalence, shm transport, the
cost-aware scheduler, and the deprecated executor_factory shim.

The headline guarantees under test:

* serial, process, and shm backends produce byte-identical merged
  payloads *and* checkpoint journals for the same sweep;
* shared-memory transport round-trips payloads exactly (threshold 0
  forces every result through a segment) and leaves no segment behind;
* scheduler reordering — any permutation at all, by hypothesis — can
  never change merged output, and with cost history present the runner
  submits predicted-longest points first;
* a sweep SIGKILLed under the shm backend resumes under serial (the
  journal is backend-independent);
* ``executor_factory=`` still works but warns, and the CostModel ledger
  survives corrupt files and round-trips through flush.
"""

import concurrent.futures
import dataclasses
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments import registry
from repro.experiments.base import Experiment, Point
from repro.experiments.store import to_jsonable
from repro.runner import (
    CostModel,
    LegacyExecutorBackend,
    ResultCache,
    SweepCheckpoint,
    SweepRunner,
    create_backend,
)
from repro.runner.backends import BACKENDS, SharedMemoryBackend
from repro.runner.checkpoint import digest_params
from repro.sim.randomness import derive_seed


@dataclasses.dataclass
class _ToyParams:
    protocol: str = "reno"

    @classmethod
    def paper(cls, protocol="reno", **overrides):
        return cls(protocol=protocol, **overrides)

    @classmethod
    def quick(cls, protocol="reno", **overrides):
        return cls(protocol=protocol, **overrides)


class _SpyExperiment(Experiment):
    """Records execution order; results depend only on (label, seed)."""

    id = "toy-backend-spy"
    title = "backend test double"
    params_cls = _ToyParams

    def __init__(self, n_points=4):
        self.n_points = n_points
        self.executed = []

    def points(self, params):
        return [Point(f"p{i}", {"i": i}) for i in range(self.n_points)]

    def run_point(self, params, point, seed):
        self.executed.append(point.label)
        return {"label": point.label, "seed": seed}

    def reduce(self, params, points, results):
        return list(results)


def _journal_point_lines(path):
    """The journal's point records (header lines filtered), sorted."""
    lines = [
        line
        for line in Path(path).read_text().splitlines()
        if line and '"result"' in line
    ]
    return sorted(lines)


# ----------------------------------------------------------------------
# Cross-backend equivalence on a real experiment
# ----------------------------------------------------------------------

class TestBackendEquivalence:
    @pytest.fixture(scope="class")
    def reference(self, tmp_path_factory):
        """The serial run every other backend must match."""
        return self._sweep("serial", tmp_path_factory.mktemp("ref"))

    @staticmethod
    def _sweep(backend, tmp_path):
        experiment = registry.get("incast")
        params = experiment.make_params(
            "quick", protocol="reno", sender_counts=(2, 3),
            block_bytes=16 * 1024,
        )
        journal = tmp_path / f"{backend}.jsonl"
        runner = SweepRunner(
            jobs=2,
            cache=None,
            backend=backend,
            checkpoint=SweepCheckpoint(journal),
        )
        payload = runner.run(experiment, params, seed=3)
        return payload, _journal_point_lines(journal), runner.last_stats

    @pytest.mark.parametrize("backend", ["process", "shm"])
    def test_payloads_and_journals_identical(
        self, backend, reference, tmp_path
    ):
        ref_payload, ref_journal, _ = reference
        payload, journal, stats = self._sweep(backend, tmp_path)
        assert to_jsonable(payload) == to_jsonable(ref_payload)
        # Journal records hold base64 pickles: byte-identical means the
        # transported results are byte-identical, not merely equal.
        assert journal == ref_journal
        assert stats.backend == backend
        assert stats.failures == []

    def test_stats_name_serial(self, reference):
        assert reference[2].backend == "serial"


class TestOpenLoopBackendEquivalence:
    """One openloop point (seeded schedule + driver) is byte-identical
    under every backend — the open-loop engine's determinism crosses
    the pickle and shared-memory transports intact."""

    @pytest.fixture(scope="class")
    def reference(self, tmp_path_factory):
        return self._sweep("serial", tmp_path_factory.mktemp("ol-ref"))

    @staticmethod
    def _sweep(backend, tmp_path):
        experiment = registry.get("openloop")
        params = experiment.make_params(
            "quick", protocol="reno", load_factors=(1.0,),
        )
        journal = tmp_path / f"{backend}.jsonl"
        runner = SweepRunner(
            jobs=2,
            cache=None,
            backend=backend,
            checkpoint=SweepCheckpoint(journal),
        )
        payload = runner.run(experiment, params, seed=11)
        return payload, _journal_point_lines(journal), runner.last_stats

    @pytest.mark.parametrize("backend", ["process", "shm"])
    def test_payloads_and_journals_identical(
        self, backend, reference, tmp_path
    ):
        ref_payload, ref_journal, _ = reference
        payload, journal, stats = self._sweep(backend, tmp_path)
        assert to_jsonable(payload) == to_jsonable(ref_payload)
        assert journal == ref_journal
        assert stats.backend == backend
        assert stats.failures == []

    def test_point_actually_simulated(self, reference):
        payload = reference[0]
        assert len(payload) == 1
        assert payload[0].completed == payload[0].offered > 0


# ----------------------------------------------------------------------
# Shared-memory transport
# ----------------------------------------------------------------------

class TestSharedMemoryTransport:
    @pytest.fixture
    def spy(self):
        experiment = _SpyExperiment()
        registry._ensure_loaded()
        registry._REGISTRY[experiment.id] = experiment
        yield experiment
        registry._REGISTRY.pop(experiment.id, None)

    def test_threshold_zero_forces_segments_and_round_trips(self, spy):
        # threshold 0: every result, however small, travels via shm.
        runner = SweepRunner(
            jobs=2, backend=SharedMemoryBackend(threshold_bytes=0)
        )
        payload = runner.run(spy, _ToyParams(), seed=9)
        assert payload == [
            {"label": f"p{i}", "seed": derive_seed(9, f"{spy.id}/p{i}")}
            for i in range(4)
        ]
        assert runner.last_stats.backend == "shm"

    def test_matches_serial_payload_exactly(self, spy):
        serial = SweepRunner(backend="serial").run(spy, _ToyParams(), seed=2)
        shm = SweepRunner(
            jobs=2, backend=SharedMemoryBackend(threshold_bytes=0)
        ).run(spy, _ToyParams(), seed=2)
        assert shm == serial

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError, match="threshold_bytes"):
            SharedMemoryBackend(threshold_bytes=-1)


# ----------------------------------------------------------------------
# Backend selection and the deprecated seam
# ----------------------------------------------------------------------

class TestBackendSelection:
    @pytest.fixture
    def spy(self):
        # Non-inline backends resolve experiments by id in the worker.
        experiment = _SpyExperiment()
        registry._ensure_loaded()
        registry._REGISTRY[experiment.id] = experiment
        yield experiment
        registry._REGISTRY.pop(experiment.id, None)

    def test_create_backend_unknown_name_lists_known(self):
        with pytest.raises(ValueError, match="process.*serial.*shm"):
            create_backend("threads")

    def test_registry_names(self):
        assert set(BACKENDS) == {"serial", "process", "shm"}

    def test_runner_rejects_non_backend_object(self):
        with pytest.raises(TypeError, match="SweepBackend"):
            SweepRunner(backend=object())

    def test_runner_rejects_unknown_schedule(self):
        with pytest.raises(ValueError, match="schedule"):
            SweepRunner(schedule="random")

    def test_serial_backend_ignores_jobs(self):
        spy = _SpyExperiment()
        runner = SweepRunner(jobs=4, backend="serial")
        runner.run(spy, _ToyParams(), seed=0)
        assert runner.last_stats.backend == "serial"
        assert spy.executed == ["p0", "p1", "p2", "p3"]

    def test_executor_factory_warns_and_still_works(self, spy):
        with pytest.warns(DeprecationWarning, match="executor_factory"):
            runner = SweepRunner(
                jobs=2,
                executor_factory=lambda n: (
                    concurrent.futures.ThreadPoolExecutor(n)
                ),
            )
        payload = runner.run(spy, _ToyParams(), seed=1)
        assert [r["label"] for r in payload] == ["p0", "p1", "p2", "p3"]
        assert runner.last_stats.backend == "legacy"

    def test_backend_and_executor_factory_conflict(self):
        with pytest.raises(ValueError, match="not both"):
            SweepRunner(
                backend="serial",
                executor_factory=lambda n: (
                    concurrent.futures.ThreadPoolExecutor(n)
                ),
            )

    def test_legacy_backend_without_warning(self, spy):
        # The migration target: wrap the factory explicitly, no warning.
        runner = SweepRunner(
            jobs=2,
            backend=LegacyExecutorBackend(
                lambda n: concurrent.futures.ThreadPoolExecutor(n)
            ),
        )
        payload = runner.run(spy, _ToyParams(), seed=1)
        assert [r["label"] for r in payload] == ["p0", "p1", "p2", "p3"]


# ----------------------------------------------------------------------
# Scheduling
# ----------------------------------------------------------------------

class TestScheduler:
    @settings(max_examples=25, deadline=None)
    @given(perm=st.permutations(tuple(range(5))))
    def test_any_submission_order_same_merged_payload(self, perm):
        """Reordering is submission-side only: merge is by point index."""

        class Reordering(SweepRunner):
            def _ordered(self, pending, stats):
                return [pending[i] for i in perm]

        baseline = SweepRunner().run(
            _SpyExperiment(n_points=5), _ToyParams(), seed=7
        )
        shuffled = Reordering().run(
            _SpyExperiment(n_points=5), _ToyParams(), seed=7
        )
        assert shuffled == baseline

    def test_cost_history_orders_longest_first(self, tmp_path):
        spy = _SpyExperiment(n_points=4)
        params = _ToyParams()
        digest = digest_params(params)
        cache = ResultCache(tmp_path / "cache")
        # History for p1 and p3 only: unknowns (p0, p2) keep submission
        # order and go first, then known points longest-first.
        cache.costs.observe(CostModel.key(spy.id, "p1", digest), 0.5)
        cache.costs.observe(CostModel.key(spy.id, "p3", digest), 2.0)
        runner = SweepRunner(cache=cache, backend="serial")
        runner.run(spy, params, seed=4)
        assert spy.executed == ["p0", "p2", "p3", "p1"]
        assert runner.last_stats.reordered > 0

    def test_fifo_schedule_disables_reordering(self, tmp_path):
        spy = _SpyExperiment(n_points=3)
        params = _ToyParams()
        digest = digest_params(params)
        cache = ResultCache(tmp_path / "cache")
        cache.costs.observe(CostModel.key(spy.id, "p2", digest), 9.0)
        runner = SweepRunner(cache=cache, backend="serial", schedule="fifo")
        runner.run(spy, params, seed=4)
        assert spy.executed == ["p0", "p1", "p2"]
        assert runner.last_stats.reordered == 0

    def test_observed_costs_flushed_after_dispatch(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        runner = SweepRunner(cache=cache, backend="serial")
        spy = _SpyExperiment(n_points=2)
        runner.run(spy, _ToyParams(), seed=1)
        # A fresh CostModel on the same path must see the measurements.
        reloaded = CostModel(tmp_path / "cache" / "costs.json")
        digest = digest_params(_ToyParams())
        for label in ("p0", "p1"):
            assert reloaded.predict(CostModel.key(spy.id, label, digest)) is not None


# ----------------------------------------------------------------------
# The CostModel ledger
# ----------------------------------------------------------------------

class TestCostModel:
    def test_predict_without_history_is_none(self, tmp_path):
        model = CostModel(tmp_path / "costs.json")
        assert model.predict("fig8/p0@abc") is None

    def test_ewma_half_old_half_new(self, tmp_path):
        model = CostModel(tmp_path / "costs.json")
        model.observe("k", 2.0)
        assert model.predict("k") == 2.0
        model.observe("k", 4.0)
        assert model.predict("k") == 3.0

    def test_negative_observation_ignored(self, tmp_path):
        model = CostModel(tmp_path / "costs.json")
        model.observe("k", -1.0)
        assert model.predict("k") is None

    def test_flush_round_trip(self, tmp_path):
        path = tmp_path / "costs.json"
        model = CostModel(path)
        model.observe("a", 1.5)
        model.flush()
        assert CostModel(path).predict("a") == 1.5

    def test_corrupt_file_means_empty(self, tmp_path):
        path = tmp_path / "costs.json"
        path.write_text("{not json")
        model = CostModel(path)
        assert model.predict("a") is None
        model.observe("a", 1.0)
        model.flush()  # and flush repairs the file
        assert CostModel(path).predict("a") == 1.0

    def test_in_memory_model_flush_is_noop(self):
        model = CostModel(None)
        model.observe("a", 1.0)
        model.flush()
        assert model.predict("a") == 1.0

    def test_key_excludes_seed_by_construction(self):
        # Different sweeps (seeds) share one history entry per point.
        assert CostModel.key("fig8", "p0", "d1") == "fig8/p0@d1"


# ----------------------------------------------------------------------
# Journal headers and cross-backend resume
# ----------------------------------------------------------------------

class TestJournalHeader:
    def test_header_round_trip(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        ckpt = SweepCheckpoint(path)
        ckpt.write_header(backend="shm", jobs=4, schedule="cost")
        ckpt.record("toy", "p0", 1, "ok")
        ckpt.close()
        loaded = SweepCheckpoint(path)
        assert loaded.load() == {("toy", "p0", 1, ""): "ok"}
        assert loaded.header["backend"] == "shm"
        assert loaded.header["jobs"] == 4

    def test_runner_writes_header_on_dispatch(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        runner = SweepRunner(
            backend="serial", checkpoint=SweepCheckpoint(path)
        )
        runner.run(_SpyExperiment(), _ToyParams(), seed=1)
        first = json.loads(path.read_text().splitlines()[0])
        assert first["backend"] == "serial"
        assert first["schedule"] == "cost"

    def test_resume_accepts_records_from_another_backend(self, tmp_path):
        spy = _SpyExperiment()
        params = _ToyParams()
        path = tmp_path / "journal.jsonl"
        # A journal "left behind" by a process-backend run that only got
        # through p1 (header + one record, written by hand).
        seed_p1 = derive_seed(6, f"{spy.id}/p1")
        ckpt = SweepCheckpoint(path)
        ckpt.write_header(backend="process", jobs=8, schedule="cost")
        ckpt.record(
            spy.id, "p1", seed_p1, {"label": "p1", "seed": seed_p1},
            params_digest=digest_params(params),
        )
        ckpt.close()
        runner = SweepRunner(
            backend="serial", checkpoint=SweepCheckpoint(path), resume=True
        )
        payload = runner.run(spy, params, seed=6)
        assert runner.last_stats.resumed == 1
        assert runner.last_stats.executed == 3
        assert spy.executed == ["p0", "p2", "p3"]  # p1 replayed for free
        baseline = SweepRunner().run(_SpyExperiment(), params, seed=6)
        assert payload == baseline


_SHM_KILL_SCRIPT = """
import dataclasses, json, os, sys, time

from repro.experiments import registry
from repro.experiments.base import Experiment, Point
from repro.runner import SweepCheckpoint, SweepRunner
from repro.runner.backends import SharedMemoryBackend


@dataclasses.dataclass
class Params:
    protocol: str = "reno"


class Sleepy(Experiment):
    id = "toy-shm-kill"
    title = "shm kill -9 target"
    params_cls = Params

    def points(self, params):
        return [Point(f"p{i}", {"i": i}) for i in range(3)]

    def run_point(self, params, point, seed):
        if point.kwargs["i"] >= 1 and os.environ.get("SLOW") == "1":
            time.sleep(60.0)  # parent SIGKILLs us here
        return {"i": point.kwargs["i"], "seed": seed, "f": 0.1 + 0.2}

    def reduce(self, params, points, results):
        return list(results)


# Pool workers fork from this process, inheriting the registration.
registry._ensure_loaded()
registry._REGISTRY[Sleepy.id] = Sleepy()

if os.environ.get("RESUME") == "1":
    # Resume on a *different* backend than the one that crashed.
    runner = SweepRunner(
        checkpoint=SweepCheckpoint(sys.argv[1]), resume=True, backend="serial"
    )
else:
    runner = SweepRunner(
        jobs=2,
        checkpoint=SweepCheckpoint(sys.argv[1]),
        backend=SharedMemoryBackend(threshold_bytes=0),
    )
payload = runner.run(registry.get(Sleepy.id), Params(), seed=5)
print(json.dumps({
    "payload": payload,
    "resumed": runner.last_stats.resumed,
    "executed": runner.last_stats.executed,
    "backend": runner.last_stats.backend,
}))
"""


class TestShmKillDashNine:
    def test_sigkill_under_shm_then_resume_under_serial(self, tmp_path):
        script = tmp_path / "sweep.py"
        script.write_text(_SHM_KILL_SCRIPT)
        journal = tmp_path / "journal.jsonl"
        env = dict(
            os.environ,
            PYTHONPATH=str(Path(__file__).resolve().parent.parent / "src"),
        )

        # Run 1 (shm backend): p0's segment-transported result lands in
        # the journal, p1/p2 sleep in workers; SIGKILL the parent.
        proc = subprocess.Popen(
            [sys.executable, str(script), str(journal)],
            env={**env, "SLOW": "1"},
            stdout=subprocess.PIPE,
        )
        try:
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                if journal.exists() and '"result"' in journal.read_text():
                    break
                time.sleep(0.05)
            else:
                pytest.fail("first point never reached the journal")
            os.kill(proc.pid, signal.SIGKILL)
        finally:
            proc.wait(timeout=30.0)
        assert proc.returncode == -signal.SIGKILL
        loaded = SweepCheckpoint(journal)
        journalled = loaded.load()
        assert [(key[0], key[1]) for key in journalled] == [
            ("toy-shm-kill", "p0")
        ]
        assert loaded.header["backend"] == "shm"

        # Run 2: resume the shm journal on the serial backend.
        resumed = subprocess.run(
            [sys.executable, str(script), str(journal)],
            env={**env, "SLOW": "0", "RESUME": "1"},
            stdout=subprocess.PIPE,
            check=True,
            timeout=60.0,
        )
        outcome = json.loads(resumed.stdout)
        assert outcome["resumed"] == 1
        assert outcome["executed"] == 2
        assert outcome["backend"] == "serial"

        # Reference: an uninterrupted serial run with its own journal.
        fresh = subprocess.run(
            [sys.executable, str(script), str(tmp_path / "fresh.jsonl")],
            env={**env, "SLOW": "0", "RESUME": "0"},
            stdout=subprocess.PIPE,
            check=True,
            timeout=60.0,
        )
        assert outcome["payload"] == json.loads(fresh.stdout)["payload"]


# ----------------------------------------------------------------------
# Failure accounting: the timeouts/errors split and control-flow exits
# ----------------------------------------------------------------------

class _FailingExperiment(_SpyExperiment):
    """Raises for one label; everything else succeeds."""

    id = "toy-backend-failing"

    def run_point(self, params, point, seed):
        if point.label == "p1":
            raise ValueError("broken point")
        return super().run_point(params, point, seed)


class _ExitingExperiment(_SpyExperiment):
    """Calls sys.exit from inside a point."""

    id = "toy-backend-exiting"

    def run_point(self, params, point, seed):
        raise SystemExit(7)


class _SleepyExperiment(_SpyExperiment):
    """Every point sleeps long enough to trip a short runner timeout."""

    id = "toy-backend-sleepy"

    def run_point(self, params, point, seed):
        time.sleep(1.0)
        return super().run_point(params, point, seed)


class TestFailureAccounting:
    def test_point_error_lands_in_stats_errors(self):
        runner = SweepRunner(jobs=1, backend="serial", retries=0)
        with pytest.warns(RuntimeWarning, match="failed"):
            runner.run(_FailingExperiment(3), _ToyParams(), seed=0)
        stats = runner.last_stats
        assert stats.errors == 1
        assert stats.timeouts == 0
        assert len(stats.failures) == 1
        assert stats.failures[0].kind == "deterministic"
        assert stats.failures[0].label == "p1"

    def test_timeout_lands_in_stats_timeouts_with_kind(self):
        # A thread pool resolves experiments by id in-process, so the
        # sleepy toy must sit in the registry for the sweep's duration.
        experiment = _SleepyExperiment(1)
        registry._ensure_loaded()
        registry._REGISTRY[experiment.id] = experiment
        try:
            runner = SweepRunner(
                jobs=2,
                backend=LegacyExecutorBackend(
                    lambda n: concurrent.futures.ThreadPoolExecutor(n)
                ),
                retries=0,
                timeout=0.1,
            )
            with pytest.warns(RuntimeWarning, match="failed"):
                runner.run(experiment, _ToyParams(), seed=0)
        finally:
            registry._REGISTRY.pop(experiment.id, None)
        stats = runner.last_stats
        assert stats.timeouts == 1
        assert stats.errors == 0
        assert len(stats.failures) == 1
        assert stats.failures[0].kind == "timeout"

    def test_system_exit_propagates_out_of_a_serial_sweep(self):
        # SystemExit is control flow, not a point failure: the serial
        # backend must re-raise it instead of feeding it to the retry
        # loop as if the point had merely errored.
        runner = SweepRunner(jobs=1, backend="serial", retries=3)
        with pytest.raises(SystemExit):
            runner.run(_ExitingExperiment(2), _ToyParams(), seed=0)
        assert runner.last_stats is None or runner.last_stats.errors == 0


# ----------------------------------------------------------------------
# Shared-memory transport degradation
# ----------------------------------------------------------------------

class TestShmPipeFallback:
    def test_unavailable_shm_rides_the_pipe_and_is_counted(
        self, tmp_path, monkeypatch
    ):
        """With /dev/shm unusable, results still arrive byte-identical —
        and the degradation is visible on ``backend.fallbacks``."""
        import multiprocessing

        experiment = registry.get("incast")
        params = experiment.make_params(
            "quick", protocol="reno", sender_counts=(2, 3),
            block_bytes=16 * 1024,
        )

        def _sweep(backend, journal):
            runner = SweepRunner(
                jobs=2, cache=None, backend=backend,
                checkpoint=SweepCheckpoint(journal),
            )
            runner.run(experiment, params, seed=3)
            return _journal_point_lines(journal)

        reference = _sweep("serial", tmp_path / "serial.jsonl")

        def _no_shm(*args, **kwargs):
            raise OSError("shm unavailable (injected)")

        # threshold 0 forces every result toward a segment; the fork
        # start method makes workers inherit the broken constructor.
        monkeypatch.setattr(
            "multiprocessing.shared_memory.SharedMemory", _no_shm
        )
        backend = SharedMemoryBackend(
            threshold_bytes=0,
            mp_context=multiprocessing.get_context("fork"),
        )
        degraded = _sweep(backend, tmp_path / "shm.jsonl")

        assert degraded == reference
        assert backend.fallbacks >= 2, (
            "every point should have fallen back to the pickle pipe"
        )


# ----------------------------------------------------------------------
# Progress reporting: the timeouts/errors split on operator-facing lines
# ----------------------------------------------------------------------

class TestProgressFailureSplit:
    def test_progress_line_and_summary_split_timeouts_from_errors(self):
        import io

        from repro.runner.progress import ProgressReporter

        stream = io.StringIO()
        reporter = ProgressReporter(label="toy", stream=stream)
        reporter.start(total=5)
        reporter.point_done("p0")
        reporter.point_done("p1", failed=True, kind="timeout")
        reporter.point_done("p2", failed=True, kind="timeout")
        reporter.point_done("p3", failed=True, kind="quarantined")
        reporter.point_done("p4")
        reporter.finish()
        output = stream.getvalue()
        assert "(2 timeouts, 1 error FAILED)" in output
        assert "2 timeouts, 1 error failed" in output.splitlines()[-1]

    def test_clean_run_reports_zero_failed(self):
        import io

        from repro.runner.progress import ProgressReporter

        stream = io.StringIO()
        reporter = ProgressReporter(label="toy", stream=stream)
        reporter.start(total=1)
        reporter.point_done("p0")
        reporter.finish()
        assert "0 failed" in stream.getvalue().splitlines()[-1]
