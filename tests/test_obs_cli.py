"""The ``--trace`` CLI plumbing and the ``trace`` report subcommand.

End-to-end over the real experiments CLI: ``--trace SPEC`` must produce
one schema-valid, canonical JSONL file per executed sweep point in the
``--trace-out`` directory, and ``python -m repro.experiments trace``
must render and validate those files.
"""

from __future__ import annotations

import pytest

from repro.experiments import __main__ as cli
from repro.obs import capture, check_jsonl, load_jsonl


@pytest.fixture(autouse=True)
def clean_capture(monkeypatch):
    """The CLI writes REPRO_TRACE* into os.environ; keep tests isolated."""
    monkeypatch.delenv(capture.ENV_SPEC, raising=False)
    monkeypatch.delenv(capture.ENV_OUT, raising=False)
    capture.discard_active()
    yield
    capture.discard_active()


class TestTraceArguments:
    def test_trace_out_requires_trace(self, tmp_path):
        with pytest.raises(SystemExit):
            cli.main(["fig4", "--trace-out", str(tmp_path)])

    def test_bad_trace_spec_rejected_before_running(self, capsys):
        with pytest.raises(SystemExit):
            cli.main(["fig4", "--trace", "cwmd"])
        err = capsys.readouterr().err
        assert "unknown trace channel" in err


class TestTraceExecution:
    @pytest.fixture()
    def traced_run(self, tmp_path, capsys):
        out_dir = tmp_path / "traces"
        assert (
            cli.main(
                [
                    "fig4",
                    "--protocols",
                    "trim",
                    "--no-cache",
                    "--trace",
                    "cwnd,probe,queue",
                    "--trace-out",
                    str(out_dir),
                ]
            )
            == 0
        )
        return out_dir, capsys.readouterr().out

    def test_writes_one_valid_jsonl_per_point(self, traced_run):
        out_dir, stdout = traced_run
        files = sorted(out_dir.glob("*.jsonl"))
        assert files, "no trace files written"
        for path in files:
            assert path.name.startswith("fig4-")
            assert check_jsonl(path) > 0
        assert "traces written to" in stdout

    def test_trace_rows_cover_requested_channels(self, traced_run):
        out_dir, _ = traced_run
        rows = [row for f in out_dir.glob("*.jsonl") for row in load_jsonl(f)]
        channels = {row["ch"] for row in rows}
        assert {"cwnd", "probe", "queue"} <= channels
        # The spec is also a filter: nothing beyond what was asked for.
        assert channels <= {"cwnd", "probe", "queue"}


class TestTraceReport:
    @pytest.fixture()
    def trace_file(self, tmp_path, capsys):
        out_dir = tmp_path / "traces"
        cli.main(
            [
                "fig4",
                "--protocols",
                "trim",
                "--no-cache",
                "--trace",
                "cwnd,probe,queue",
                "--trace-out",
                str(out_dir),
            ]
        )
        capsys.readouterr()  # drop the sweep output
        return sorted(out_dir.glob("*.jsonl"))[0]

    def test_render_prints_summary_and_staircase(self, trace_file, capsys):
        assert cli.main(["trace", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert f"== {trace_file}" in out
        assert "records:" in out
        assert "cwnd over" in out
        assert "#" in out  # some staircase ink

    def test_check_ok(self, trace_file, capsys):
        assert cli.main(["trace", "--check", str(trace_file)]) == 0
        assert "ok " in capsys.readouterr().out

    def test_check_fails_on_corrupt_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"ch": "cwnd", "t": 0.1}\n')
        assert cli.main(["trace", "--check", str(bad)]) == 1
        assert "FAIL" in capsys.readouterr().err

    def test_render_without_cwnd_channel_degrades_gracefully(
        self, tmp_path, capsys
    ):
        only_queue = tmp_path / "q.jsonl"
        only_queue.write_text(
            '{"backlog":2,"ch":"queue","kind":"sample","link":"L","t":0.1}\n'
        )
        assert cli.main(["trace", str(only_queue)]) == 0
        out = capsys.readouterr().out
        assert "no staircase" in out
        assert "queue L: peak backlog 2" in out
