"""Preset contracts: every experiment exposes paper() and quick().

The benches rely on quick presets being structurally identical to the
paper presets (same protocol threading, same scenario shape) while
being strictly lighter to run.
"""

import dataclasses

import pytest

from repro.experiments.concurrency import ConcurrencyParams
from repro.experiments.fairness import FairnessParams
from repro.experiments.fattree import FatTreeParams
from repro.experiments.incast import IncastParams
from repro.experiments.large_scale import LargeScaleParams
from repro.experiments.motivation import MotivationParams
from repro.experiments.multihop import MultiHopParams
from repro.experiments.properties import PropertiesParams
from repro.experiments.testbed import ArctParams, WebServiceParams

ALL_PARAMS = (
    ArctParams,
    ConcurrencyParams,
    FairnessParams,
    FatTreeParams,
    IncastParams,
    LargeScaleParams,
    MotivationParams,
    MultiHopParams,
    PropertiesParams,
    WebServiceParams,
)


@pytest.mark.parametrize("params_cls", ALL_PARAMS)
class TestPresetContract:
    def test_both_presets_construct(self, params_cls):
        assert params_cls.paper() is not None
        assert params_cls.quick() is not None

    def test_protocol_threads_through(self, params_cls):
        assert params_cls.paper("trim").protocol == "trim"
        assert params_cls.quick("trim").protocol == "trim"

    def test_presets_differ(self, params_cls):
        """quick must actually reduce something."""
        assert params_cls.paper() != params_cls.quick()

    def test_overrides_win(self, params_cls):
        field_names = {f.name for f in dataclasses.fields(params_cls)}
        assert "protocol" in field_names
        if "seed" in field_names:
            assert params_cls.quick(seed=99).seed == 99

    def test_is_dataclass(self, params_cls):
        assert dataclasses.is_dataclass(params_cls)


class TestSpecificDefaults:
    def test_motivation_matches_paper_text(self):
        p = MotivationParams.paper()
        assert p.n_servers == 5
        assert p.n_responses == 200
        assert p.bandwidth_bps == 1e9
        assert p.buffer_pkts == 100
        assert p.lpt_start == 0.5
        assert p.min_rto == 0.2

    def test_concurrency_matches_paper_text(self):
        p = ConcurrencyParams.paper()
        assert p.spt_segments == 10
        assert p.spt_time == 0.3
        assert p.min_rto == 0.2

    def test_large_scale_matches_paper_text(self):
        p = LargeScaleParams.paper()
        assert p.servers_per_switch == 42
        assert p.lpts_per_switch == 2
        assert p.min_rto == 0.02  # the paper's 20 ms RTO
        assert tuple(p.switch_counts) == (5, 10, 15, 20, 25)

    def test_fattree_matches_paper_text(self):
        p = FatTreeParams.paper()
        assert p.bandwidth_bps == 10e9
        assert p.buffer_pkts == 245  # 350 KB of MSS packets
        assert p.total_bytes == 1_000_000
        assert p.small_start == 0.1 and p.big_start == 0.5

    def test_fairness_matches_paper_text(self):
        p = FairnessParams.paper()
        assert p.n_flows == 5
        assert p.stagger == 2.0
        assert p.stop_start == 12.1
        assert p.server_bps == 1.1e9 and p.bottleneck_bps == 1e9

    def test_testbed_matches_paper_text(self):
        p = ArctParams.paper()
        assert p.n_responses == 100
        assert p.bandwidth_bps == 100e6
        assert p.size_jitter == 0.1
        w = WebServiceParams.paper()
        assert w.n_servers == 4
        assert w.n_responses_per_server == 1000
        assert w.tail_threshold == 25e-3
