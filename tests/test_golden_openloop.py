"""Golden open-loop fixtures: schedule and replay telemetry are byte-stable.

Two fixtures pin the open-loop engine end to end:

* ``openloop_poisson.jsonl`` — the trace export of a seeded Poisson
  schedule compilation (arrival sampling, session chains, size draws,
  canonical JSONL encoding);
* ``openloop_replay.jsonl`` — the ``session``/``pool`` telemetry from
  *replaying* that exact trace through the simulator driver (pool
  lease order, idle expiry timing, completion latencies).

Because the second fixture is produced by loading the first, the pair
certifies the full loop the ISSUE names: compile → export → replay →
byte-identical behavior.  To re-record after an intended change::

    PYTHONPATH=src python -m pytest tests/test_golden_openloop.py --regen-golden

and commit both fixtures with the change that moved them.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.http.openloop import (
    OpenLoopDriver,
    PoissonArrivals,
    SessionConfig,
    check_trace,
    compile_schedule,
    load_trace,
    write_trace,
)
from repro.net.topology import build_star
from repro.obs import Telemetry, TraceSpec, check_jsonl, write_jsonl
from repro.sim.kernel import Simulator

POISSON_FIXTURE = Path(__file__).parent / "golden" / "openloop_poisson.jsonl"
REPLAY_FIXTURE = Path(__file__).parent / "golden" / "openloop_replay.jsonl"

# Scenario constants: small enough to run in milliseconds, busy enough
# to exercise chains, pool reuse, and at least one idle expiry.
RATE = 120.0
HORIZON = 0.4
SEED = 2016  # the paper's year, and nothing else
N_SERVERS = 2
IDLE_TIMEOUT = 0.05
MAX_REUSE = 8
DRAIN = 0.6


def compile_golden_schedule():
    return compile_schedule(
        PoissonArrivals(RATE),
        SessionConfig(mean_requests=2.5, think_time_s=0.02),
        seed=SEED,
        horizon=HORIZON,
    )


def run_replay(schedule) -> list[dict]:
    """Drive ``schedule`` with a session+pool bus; returns the rows."""
    telemetry = Telemetry(TraceSpec.parse("session,pool"))
    sim = Simulator(telemetry=telemetry)
    star = build_star(sim, N_SERVERS)
    driver = OpenLoopDriver(
        sim,
        star.frontend,
        star.servers,
        "reno",
        idle_timeout_s=IDLE_TIMEOUT,
        max_reuse=MAX_REUSE,
    )
    run = driver.play(schedule)
    sim.run(until=HORIZON + DRAIN)
    assert run.completed == run.offered, "golden scenario must drain"
    driver.check_conservation()
    return telemetry.rows()


def test_golden_poisson_trace_is_byte_identical(tmp_path, regen_golden):
    schedule = compile_golden_schedule()
    assert len(schedule) > 30  # the fixture must pin real work

    if regen_golden:
        POISSON_FIXTURE.parent.mkdir(exist_ok=True)
        write_trace(schedule, POISSON_FIXTURE)
        return
    if not POISSON_FIXTURE.exists():
        pytest.fail(
            f"missing golden fixture {POISSON_FIXTURE}; record it with "
            "'python -m pytest tests/test_golden_openloop.py "
            "--regen-golden' and commit the result"
        )
    produced = write_trace(schedule, tmp_path / "openloop_poisson.jsonl")
    assert produced.read_bytes() == POISSON_FIXTURE.read_bytes(), (
        "the compiled Poisson schedule diverged from the recorded golden "
        "trace. If the change is intended (arrival sampling, session "
        "model, or size distribution), re-record with --regen-golden; "
        "otherwise seeded compilation changed under you."
    )


def test_golden_replay_telemetry_is_byte_identical(tmp_path, regen_golden):
    if not regen_golden and not POISSON_FIXTURE.exists():
        pytest.skip("poisson fixture not recorded yet")
    if regen_golden:
        # Regen order within this file guarantees the trace exists.
        write_trace(compile_golden_schedule(), POISSON_FIXTURE)
    schedule = load_trace(POISSON_FIXTURE, horizon=HORIZON)
    rows = run_replay(schedule)

    events = {row["event"] for row in rows if row["ch"] == "pool"}
    assert "open" in events and "reuse" in events
    assert "close_idle" in events  # the fixture must pin idle expiry

    if regen_golden:
        write_jsonl(rows, REPLAY_FIXTURE)
        return
    if not REPLAY_FIXTURE.exists():
        pytest.fail(
            f"missing golden fixture {REPLAY_FIXTURE}; record it with "
            "'python -m pytest tests/test_golden_openloop.py "
            "--regen-golden' and commit the result"
        )
    produced = write_jsonl(rows, tmp_path / "openloop_replay.jsonl")
    assert produced.read_bytes() == REPLAY_FIXTURE.read_bytes(), (
        "replaying the golden trace produced different session/pool "
        "telemetry. If this behavior (or schema) change is intended, "
        "re-record with --regen-golden; otherwise the driver, pool, or "
        "simulator timing changed under you."
    )


def test_golden_fixtures_are_canonical():
    """Both committed fixtures pass their own format checkers."""
    if not POISSON_FIXTURE.exists() or not REPLAY_FIXTURE.exists():
        pytest.skip("fixtures not recorded yet")
    assert check_trace(POISSON_FIXTURE) > 30
    assert check_jsonl(REPLAY_FIXTURE) > 0
