"""Unit tests for the dispatch building blocks: frames, retry policy,
circuit breakers, and host-list parsing.

Everything here is in-process and fast — no worker subprocesses.  The
frame tests talk over a local socketpair; the breaker tests drive the
state machine with a fake clock.  End-to-end fleet behavior lives in
test_dispatch_backend.py and the chaos harness.
"""

import json
import socket
import struct
import threading

import pytest

from repro.runner.dispatch.breaker import CircuitBreaker
from repro.runner.dispatch.frames import (
    MAX_FRAME_BYTES,
    FrameError,
    connect_socket,
    decode_payload,
    encode_payload,
    listen_socket,
    recv_frame,
    send_frame,
)
from repro.runner.dispatch.hosts import (
    DEFAULT_SPAWN,
    HostSpec,
    default_hosts,
    parse_hosts,
)
from repro.runner.dispatch.retry import (
    DETERMINISTIC,
    TIMEOUT,
    TRANSIENT,
    LeaseExpired,
    QuarantinedPoint,
    RetryPolicy,
    WorkerLost,
    classify_failure,
    failure_signature,
)


@pytest.fixture()
def sock_pair():
    """A connected (client, server) TCP pair built via the sanctioned
    frames helpers, so the test exercises the same socket options the
    dispatcher and workers use."""
    listener = listen_socket()
    port = listener.getsockname()[1]
    accepted = {}

    def _accept():
        conn, _ = listener.accept()
        accepted["server"] = conn

    thread = threading.Thread(target=_accept)
    thread.start()
    client = connect_socket("127.0.0.1", port, timeout=5.0)
    thread.join(timeout=5.0)
    server = accepted["server"]
    yield client, server
    for sock in (client, server, listener):
        sock.close()


class TestFrames:
    def test_round_trip_single_frame(self, sock_pair):
        client, server = sock_pair
        message = {"op": "hello", "worker": "local0", "pid": 1234}
        send_frame(client, message)
        assert recv_frame(server) == message

    def test_round_trip_pickled_payload(self, sock_pair):
        client, server = sock_pair
        payload = {"values": list(range(64)), "label": "n=4"}
        send_frame(client, {"op": "result", "id": 7,
                            "payload": encode_payload(payload)})
        frame = recv_frame(server)
        assert frame["id"] == 7
        assert decode_payload(frame["payload"]) == payload

    def test_back_to_back_frames_do_not_bleed(self, sock_pair):
        client, server = sock_pair
        for i in range(5):
            send_frame(client, {"op": "heartbeat", "seq": i})
        got = [recv_frame(server)["seq"] for _ in range(5)]
        assert got == list(range(5))

    def test_clean_eof_at_boundary_returns_none(self, sock_pair):
        client, server = sock_pair
        send_frame(client, {"op": "bye"})
        client.close()
        assert recv_frame(server) == {"op": "bye"}
        assert recv_frame(server) is None

    def test_torn_frame_raises_frame_error(self, sock_pair):
        client, server = sock_pair
        body = json.dumps({"op": "hello"}).encode("utf-8")
        # Advertise the full body but deliver only half before closing.
        client.sendall(struct.pack(">I", len(body)) + body[: len(body) // 2])
        client.close()
        with pytest.raises(FrameError, match="mid-frame"):
            recv_frame(server)

    def test_oversize_length_prefix_rejected_before_allocation(self, sock_pair):
        client, server = sock_pair
        client.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
        with pytest.raises(FrameError, match="exceeds MAX_FRAME_BYTES"):
            recv_frame(server)

    def test_non_json_body_raises(self, sock_pair):
        client, server = sock_pair
        body = b"\xff\xfe not json"
        client.sendall(struct.pack(">I", len(body)) + body)
        with pytest.raises(FrameError, match="not JSON"):
            recv_frame(server)

    def test_unknown_op_raises(self, sock_pair):
        client, server = sock_pair
        send_frame(client, {"op": "heartbeat"})  # sanity: known op fine
        assert recv_frame(server)["op"] == "heartbeat"
        body = json.dumps({"op": "warp-core-breach"}).encode("utf-8")
        client.sendall(struct.pack(">I", len(body)) + body)
        with pytest.raises(FrameError, match="known-op"):
            recv_frame(server)

    def test_frame_error_is_a_connection_error(self):
        # Classification relies on this: frame corruption == broken peer.
        assert issubclass(FrameError, ConnectionError)


class TestClassification:
    def test_transient_types(self):
        for exc in (ConnectionResetError("rst"), BrokenPipeError("pipe"),
                    EOFError(), LeaseExpired("lease"), FrameError("torn")):
            assert classify_failure(exc) == TRANSIENT

    def test_timeout_types(self):
        assert classify_failure(TimeoutError("slow")) == TIMEOUT

    def test_everything_else_presumed_deterministic(self):
        for exc in (ValueError("bad"), ZeroDivisionError(), RuntimeError("x")):
            assert classify_failure(exc) == DETERMINISTIC

    def test_dispatch_terminal_errors_are_not_transient(self):
        # DispatchError subclasses RuntimeError, not ConnectionError —
        # the engine must treat them as final, never re-retry.
        lost = WorkerLost("n=1", 3, ("local0", "local1"))
        quarantined = QuarantinedPoint("n=1", "ValueError: bad",
                                       ("local0", "local1"), "q.jsonl")
        assert classify_failure(lost) == DETERMINISTIC
        assert classify_failure(quarantined) == DETERMINISTIC
        assert "local1" in str(lost)
        assert "quarantined" in str(quarantined)

    def test_failure_signature_folds_type_and_message(self):
        sig = failure_signature("ValueError", "poison pill n=3")
        assert sig == "ValueError: poison pill n=3"


class TestRetryPolicy:
    def test_spec_round_trip(self):
        policy = RetryPolicy(max_attempts=3, base_delay=0.1, multiplier=3.0,
                             max_delay=5.0, jitter=0.25, transient_budget=4,
                             seed=7)
        assert RetryPolicy.parse(policy.to_spec()) == policy

    def test_parse_partial_spec_keeps_defaults(self):
        policy = RetryPolicy.parse("attempts=5,seed=9")
        assert policy.max_attempts == 5
        assert policy.seed == 9
        assert policy.base_delay == RetryPolicy().base_delay

    def test_parse_empty_spec_is_default(self):
        assert RetryPolicy.parse("") == RetryPolicy()

    def test_parse_rejects_unknown_key_and_bad_value(self):
        with pytest.raises(ValueError, match="bad retry-policy term"):
            RetryPolicy.parse("attempts=2,warp=9")
        with pytest.raises(ValueError, match="bad retry-policy value"):
            RetryPolicy.parse("attempts=two")

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1)
        with pytest.raises(ValueError):
            RetryPolicy(transient_budget=-1)

    def test_allows_is_one_based_cap(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.allows(1)
        assert policy.allows(3)
        assert not policy.allows(4)

    def test_transient_budget_exhaustion(self):
        policy = RetryPolicy(transient_budget=2)
        assert policy.allows_transient(0)
        assert policy.allows_transient(1)
        assert not policy.allows_transient(2)

    def test_backoff_growth_and_cap(self):
        policy = RetryPolicy(base_delay=0.1, multiplier=2.0, max_delay=0.35,
                             jitter=0.0)
        schedule = policy.schedule("exp/n=1")
        assert schedule.delay(1) == pytest.approx(0.1)
        assert schedule.delay(2) == pytest.approx(0.2)
        # 0.4 raw, capped at 0.35; cap applies before jitter.
        assert schedule.delay(3) == pytest.approx(0.35)
        assert schedule.delay(7) == pytest.approx(0.35)

    def test_jitter_is_deterministic_in_seed_and_key(self):
        policy_a = RetryPolicy(seed=11, jitter=0.5)
        policy_b = RetryPolicy(seed=11, jitter=0.5)
        delays_a = [policy_a.schedule("exp/n=1").delay(i) for i in (1, 2, 3)]
        delays_b = [policy_b.schedule("exp/n=1").delay(i) for i in (1, 2, 3)]
        assert delays_a == delays_b

    def test_jitter_differs_across_keys_and_seeds(self):
        policy = RetryPolicy(seed=11, jitter=0.5)
        other_key = [policy.schedule("exp/n=2").delay(i) for i in (1, 2, 3)]
        same_key = [policy.schedule("exp/n=1").delay(i) for i in (1, 2, 3)]
        other_seed = [RetryPolicy(seed=12, jitter=0.5).schedule("exp/n=1").delay(i)
                      for i in (1, 2, 3)]
        assert same_key != other_key
        assert same_key != other_seed

    def test_out_of_order_queries_do_not_perturb_draws(self):
        policy = RetryPolicy(seed=3, jitter=1.0)
        forward = policy.schedule("k")
        ordered = [forward.delay(i) for i in (1, 2, 3)]
        backward = policy.schedule("k")
        reversed_query = [backward.delay(3), backward.delay(2), backward.delay(1)]
        assert ordered == reversed_query[::-1]

    def test_delay_is_one_based(self):
        with pytest.raises(ValueError, match="1-based"):
            RetryPolicy().schedule("k").delay(0)


class FakeClock:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestCircuitBreaker:
    def test_closed_until_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(threshold=3, cooldown=5.0, clock=FakeClock())
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allows()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.opened_count == 1

    def test_success_resets_the_consecutive_count(self):
        breaker = CircuitBreaker(threshold=2, cooldown=5.0, clock=FakeClock())
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_open_blocks_until_cooldown_then_admits_one_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=5.0, clock=clock)
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allows()
        clock.advance(4.9)
        assert not breaker.allows()
        clock.advance(0.2)
        assert breaker.allows()  # the single probe
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert not breaker.allows()  # probe outstanding: nothing else

    def test_probe_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=1.0, clock=clock)
        breaker.record_failure()
        clock.advance(1.5)
        assert breaker.allows()
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allows()

    def test_probe_failure_reopens_for_a_full_cooldown(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown=2.0, clock=clock)
        breaker.record_failure()
        clock.advance(2.5)
        assert breaker.allows()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.opened_count == 2
        assert not breaker.allows()
        clock.advance(2.5)
        assert breaker.allows()

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(cooldown=-1.0)


class TestHosts:
    def test_parse_local_n(self):
        hosts = parse_hosts("local:3")
        assert len(hosts) == 1
        assert hosts[0].name == "local"
        assert hosts[0].workers == 3
        assert hosts[0].spawn == DEFAULT_SPAWN

    def test_parse_bare_local_means_one_worker(self):
        assert parse_hosts("local")[0].workers == 1

    def test_default_hosts_clamps_to_one(self):
        assert default_hosts(0)[0].workers == 1

    def test_parse_json_host_file(self, tmp_path):
        doc = [
            {"name": "node-a", "workers": 2,
             "spawn": ["ssh", "node-a", "{python}", "-m",
                       "repro.runner.dispatch.worker",
                       "--connect", "{addr}", "--worker", "{worker}",
                       "--heartbeat", "{heartbeat}"]},
            {"name": "node-b", "workers": 1},
        ]
        path = tmp_path / "hosts.json"
        path.write_text(json.dumps(doc), encoding="utf-8")
        hosts = parse_hosts(str(path))
        assert [h.name for h in hosts] == ["node-a", "node-b"]
        assert hosts[0].spawn[0] == "ssh"
        assert hosts[1].spawn == DEFAULT_SPAWN

    def test_parse_rejects_bad_specs(self, tmp_path):
        with pytest.raises(ValueError, match="grammar"):
            parse_hosts("local:many")
        with pytest.raises(ValueError):
            parse_hosts("")
        with pytest.raises(ValueError, match="not valid JSON"):
            bad = tmp_path / "bad.json"
            bad.write_text("{", encoding="utf-8")
            parse_hosts(str(bad))
        with pytest.raises(ValueError, match="duplicate host"):
            dup = tmp_path / "dup.json"
            dup.write_text(json.dumps([{"name": "a"}, {"name": "a"}]),
                           encoding="utf-8")
            parse_hosts(str(dup))
        with pytest.raises(ValueError, match="unknown key"):
            unknown = tmp_path / "unknown.json"
            unknown.write_text(json.dumps([{"name": "a", "cpus": 4}]),
                               encoding="utf-8")
            parse_hosts(str(unknown))

    def test_command_substitutes_all_placeholders(self):
        host = HostSpec("node-a", 2)
        argv = host.command("127.0.0.1:5000", "node-a1", heartbeat=0.25)
        assert "--connect" in argv
        assert "127.0.0.1:5000" in argv
        assert "node-a1" in argv
        assert "0.25" in argv
        assert argv[0]  # {python} resolved to a real interpreter path

    def test_worker_names_are_host_prefixed_and_unique(self):
        names = HostSpec("node-a", 3).worker_names()
        assert names == ["node-a0", "node-a1", "node-a2"]
        assert len(set(names)) == 3

    def test_host_spec_validation(self):
        with pytest.raises(ValueError):
            HostSpec("", 1)
        with pytest.raises(ValueError):
            HostSpec("a", 0)
        with pytest.raises(ValueError):
            HostSpec("a", 1, spawn=())
