"""simlint v2: cross-module rules, the cache, SARIF, and the baseline.

Each SIM011-SIM015 family gets a positive fixture (the smuggled-RNG /
wall-clock / unpicklable-payload / unit-mix-up / contract-violation
snippet the ISSUE names) and an adjacent negative fixture.  The cache
section proves the incremental contract — a one-module change
re-analyzes only that module plus its reverse-import closure — by
asserting on the journal, not just on the findings.
"""

import json
import subprocess

import pytest

from repro.lint import lint_source
from repro.lint.baseline import Baseline, BaselineError
from repro.lint.cache import lint_paths_cached
from repro.lint.core import Finding, all_rules, lint_module_in_project
from repro.lint.project import ProjectContext
from repro.lint.sarif import render_sarif, to_sarif
from repro.lint.__main__ import main as lint_main


def lint_project(sources, select=None):
    """Lint an in-memory multi-module project ({dotted_name: source})."""
    project = ProjectContext.from_sources(sources)
    findings = []
    for info in project.modules_in_path_order():
        findings.extend(lint_module_in_project(project, info.context, select))
    return sorted(findings)


def rule_ids(findings):
    return sorted({f.rule_id for f in findings})


class TestProjectContext:
    def test_import_graph_resolves_absolute_and_relative(self):
        project = ProjectContext.from_sources(
            {
                "pkg": "",
                "pkg.base": "VALUE = 1\n",
                "pkg.mid": "from pkg.base import VALUE\nX = VALUE\n",
                "pkg.rel": "from .base import VALUE\nY = VALUE\n",
                "pkg.leaf": "Z = 3\n",
            }
        )
        assert project.modules["pkg.mid"].imports == {"pkg.base"}
        assert project.modules["pkg.rel"].imports == {"pkg.base"}
        assert project.modules["pkg.leaf"].imports == set()

    def test_reverse_closure_is_transitive(self):
        project = ProjectContext.from_sources(
            {
                "a": "V = 1\n",
                "b": "from a import V\nW = V\n",
                "c": "from b import W\nU = W\n",
                "d": "S = 0\n",
            }
        )
        assert project.reverse_closure({"a"}) == {"a", "b", "c"}
        assert project.reverse_closure({"c"}) == {"c"}

    def test_resolve_function_across_modules(self):
        project = ProjectContext.from_sources(
            {
                "helpers": "def fresh():\n    return 1\n",
                "usersite": "from helpers import fresh\nx = fresh()\n",
            }
        )
        module = project.modules["usersite"].context
        import ast

        call = next(
            n for n in ast.walk(module.tree) if isinstance(n, ast.Call)
        )
        target = project.resolve_function(module, call)
        assert target is not None
        assert target.full_name == "helpers.fresh"


class TestSim011RngProvenance:
    def test_flags_rng_laundered_through_helper_in_another_module(self):
        findings = lint_project(
            {
                "proj.helpers": (
                    "import random\n"
                    "def fresh_rng():\n"
                    "    return random.Random()\n"
                ),
                "proj.mainmod": (
                    "from proj.helpers import fresh_rng\n"
                    "rng = fresh_rng()\n"
                ),
            },
            select=["SIM011"],
        )
        assert rule_ids(findings) == ["SIM011"]
        assert findings[0].path == "proj/mainmod.py"
        assert "proj.helpers.fresh_rng" in findings[0].message

    def test_taint_propagates_two_helper_hops(self):
        findings = lint_project(
            {
                "proj.inner": (
                    "import random\n"
                    "def mint():\n"
                    "    return random.Random()\n"
                ),
                "proj.outer": (
                    "from proj.inner import mint\n"
                    "def wrap():\n"
                    "    rng = mint()\n"
                    "    return rng\n"
                ),
                "proj.use": "from proj.outer import wrap\nr = wrap()\n",
            },
            select=["SIM011"],
        )
        paths = sorted({f.path for f in findings})
        # outer's call to mint() and use's call to wrap() both flag.
        assert paths == ["proj/outer.py", "proj/use.py"]

    def test_entropy_free_default_rng_flagged_even_in_randomness_home(self):
        src = "import numpy as np\nrng = np.random.default_rng()\n"
        findings = lint_source(
            src, path="repro/sim/randomness.py", select=["SIM011"]
        )
        assert rule_ids(findings) == ["SIM011"]
        assert "entropy-free" in findings[0].message

    def test_helper_forwarding_seeded_rng_is_fine(self):
        findings = lint_project(
            {
                "proj.helpers": (
                    "from repro.sim.randomness import seeded_rng\n"
                    "def stream(seed):\n"
                    "    return seeded_rng(seed, 'flows')\n"
                ),
                "proj.mainmod": (
                    "from proj.helpers import stream\n"
                    "rng = stream(7)\n"
                ),
            },
            select=["SIM011"],
        )
        assert findings == []


class TestSim012WallClockTaint:
    def test_flags_wall_clock_value_scheduled(self):
        src = (
            "import time\n"
            "def arm(sim, cb):\n"
            "    t = time.time()\n"
            "    sim.schedule(t + 0.1, cb)\n"
        )
        findings = lint_source(src, select=["SIM012"])
        assert rule_ids(findings) == ["SIM012"]
        assert "wall-clock" in findings[0].message

    def test_flags_perf_counter_through_cross_module_helper(self):
        findings = lint_project(
            {
                "proj.clock": (
                    "import time\n"
                    "def stamp():\n"
                    "    return time.perf_counter()\n"
                ),
                "proj.driver": (
                    "from proj.clock import stamp\n"
                    "def arm(sim, cb):\n"
                    "    sim.schedule_at(stamp(), cb)\n"
                ),
            },
            select=["SIM012"],
        )
        assert rule_ids(findings) == ["SIM012"]
        assert findings[0].path == "proj/driver.py"
        assert "proj.clock.stamp" in findings[0].message

    def test_sim_now_arithmetic_is_fine(self):
        src = (
            "def arm(sim, cb, delay_s):\n"
            "    sim.schedule(sim.now + delay_s, cb)\n"
        )
        assert lint_source(src, select=["SIM012"]) == []

    def test_perf_counter_for_display_is_fine(self):
        src = (
            "import time\n"
            "def bench(run):\n"
            "    t0 = time.perf_counter()\n"
            "    run()\n"
            "    return time.perf_counter() - t0\n"
        )
        assert lint_source(src, select=["SIM012"]) == []


class TestSim013ProcessBoundary:
    def test_flags_lambda_in_point_kwargs(self):
        src = (
            "from repro.experiments.base import Point\n"
            "p = Point('a', on_done=lambda r: r)\n"
        )
        findings = lint_source(src, select=["SIM013"])
        assert rule_ids(findings) == ["SIM013"]
        assert "lambda" in findings[0].message

    def test_flags_locally_defined_callback(self):
        src = (
            "from repro.runner.backends import PointSpec\n"
            "def build():\n"
            "    def cb(result):\n"
            "        return result\n"
            "    return PointSpec('exp', {}, hook=cb)\n"
        )
        findings = lint_source(src, select=["SIM013"])
        assert rule_ids(findings) == ["SIM013"]
        assert "local scope" in findings[0].message

    def test_flags_open_file_handle_in_submit(self):
        src = (
            "def run(backend, spec):\n"
            "    backend.submit(spec, log=open('out.txt'))\n"
        )
        findings = lint_source(src, select=["SIM013"])
        assert rule_ids(findings) == ["SIM013"]
        assert "file handle" in findings[0].message

    def test_flags_lambda_laundered_through_helper_module(self):
        findings = lint_project(
            {
                "proj.payloads": (
                    "def make_cb():\n"
                    "    return lambda x: x\n"
                ),
                "proj.sweep": (
                    "from repro.experiments.base import Point\n"
                    "from proj.payloads import make_cb\n"
                    "p = Point('a', fn=make_cb())\n"
                ),
            },
            select=["SIM013"],
        )
        assert rule_ids(findings) == ["SIM013"]
        assert findings[0].path == "proj/sweep.py"

    def test_plain_data_and_module_level_function_are_fine(self):
        src = (
            "from repro.experiments.base import Point\n"
            "def reducer(rows):\n"
            "    return rows\n"
            "p = Point('a', n_flows=8, fn=reducer)\n"
        )
        assert lint_source(src, select=["SIM013"]) == []


class TestSim014UnitDimensions:
    def test_flags_seconds_plus_bytes(self):
        src = "def f(delay_s, size_bytes):\n    return delay_s + size_bytes\n"
        findings = lint_source(src, select=["SIM014"])
        assert rule_ids(findings) == ["SIM014"]
        assert "'s'" in findings[0].message
        assert "'bytes'" in findings[0].message

    def test_flags_cross_unit_comparison_and_keyword(self):
        src = "def f(window_pkts, budget_bytes):\n    return window_pkts < budget_bytes\n"
        assert rule_ids(lint_source(src, select=["SIM014"])) == ["SIM014"]
        src = "def f(g, size_bytes):\n    return g(timeout_s=size_bytes)\n"
        assert rule_ids(lint_source(src, select=["SIM014"])) == ["SIM014"]

    def test_same_unit_and_unsuffixed_operands_are_fine(self):
        src = (
            "def f(delay_s, rtt_s, n):\n"
            "    total_s = delay_s + rtt_s\n"
            "    return total_s + n\n"
        )
        assert lint_source(src, select=["SIM014"]) == []

    def test_millis_vs_seconds_flagged(self):
        src = "def f(rto_ms, rtt_s):\n    return rto_ms - rtt_s\n"
        assert rule_ids(lint_source(src, select=["SIM014"])) == ["SIM014"]


EXPERIMENT_PREAMBLE = (
    "from repro.experiments.base import Experiment\n"
    "from repro.experiments.registry import register\n"
)


class TestSim015ExperimentConformance:
    def test_flags_missing_declarations_and_print(self):
        src = EXPERIMENT_PREAMBLE + (
            "@register\n"
            "class Bad(Experiment):\n"
            "    def points(self, params):\n"
            "        return []\n"
            "    def run_point(self, params, point, seed):\n"
            "        print('progress')\n"
            "        return None\n"
            "    def reduce(self, params, points, results):\n"
            "        return list(results)\n"
        )
        findings = lint_source(src, select=["SIM015"])
        assert rule_ids(findings) == ["SIM015"]
        messages = "\n".join(f.message for f in findings)
        assert "does not declare id, title, params_cls" in messages
        assert "prints directly" in messages

    def test_flags_file_write_in_run_point(self):
        src = EXPERIMENT_PREAMBLE + (
            "@register\n"
            "class Leaky(Experiment):\n"
            "    id = 'leaky'\n"
            "    title = 'Leaky'\n"
            "    params_cls = None\n"
            "    def points(self, params):\n"
            "        return []\n"
            "    def run_point(self, params, point, seed):\n"
            "        with open('out.csv', 'w') as fh:\n"
            "            fh.write('x')\n"
            "        return None\n"
            "    def reduce(self, params, points, results):\n"
            "        return list(results)\n"
        )
        findings = lint_source(src, select=["SIM015"])
        assert len(findings) == 1
        assert "writes a file directly" in findings[0].message

    def test_conforming_experiment_is_fine(self):
        src = EXPERIMENT_PREAMBLE + (
            "@register\n"
            "class Fine(Experiment):\n"
            "    id = 'fine'\n"
            "    title = 'Fine'\n"
            "    params_cls = None\n"
            "    def points(self, params):\n"
            "        return []\n"
            "    def run_point(self, params, point, seed):\n"
            "        return {'ok': True}\n"
            "    def reduce(self, params, points, results):\n"
            "        return list(results)\n"
        )
        assert lint_source(src, select=["SIM015"]) == []

    def test_unregistered_subclass_is_not_held_to_declarations(self):
        src = (
            "from repro.experiments.base import Experiment\n"
            "class AbstractMixin(Experiment):\n"
            "    def points(self, params):\n"
            "        return []\n"
            "    def run_point(self, params, point, seed):\n"
            "        return None\n"
            "    def reduce(self, params, points, results):\n"
            "        return list(results)\n"
        )
        assert lint_source(src, select=["SIM015"]) == []

    def test_flags_positional_flow_id_to_sink_and_connect(self):
        src = (
            "from repro.tcp.base import TcpSink\n"
            "def build(sim, host, fid, connections, a, b):\n"
            "    sink = TcpSink(sim, host, fid)\n"
            "    connections.connect(a, b, fid)\n"
        )
        findings = lint_source(src, select=["SIM015"])
        assert len(findings) == 2
        assert all("keyword-only" in f.message for f in findings)

    def test_keyword_call_sites_and_topology_connect_are_fine(self):
        src = (
            "from repro.tcp.base import TcpSink\n"
            "def build(sim, host, fid, net, a, b, bw, delay, buf):\n"
            "    sink = TcpSink(sim, host, flow_id=fid)\n"
            "    net.connect(a, b, bw, delay, buf)\n"
        )
        assert lint_source(src, select=["SIM015"]) == []


class TestSim016UnjustifiedSuppression:
    def test_flags_bare_directive(self):
        src = "import random  # simlint: disable=SIM001\n"
        findings = lint_source(src, select=["SIM016"])
        assert rule_ids(findings) == ["SIM016"]
        assert findings[0].line == 1

    def test_unjustified_disable_all_cannot_self_suppress(self):
        src = "import random  # simlint: disable=all\n"
        findings = lint_source(src, select=["SIM016"])
        assert rule_ids(findings) == ["SIM016"]

    def test_justified_directives_pass(self):
        src = (
            "import random  # deterministic shim  # simlint: disable=SIM001\n"
            "# exact tie-break required; see Event.__lt__\n"
            "# simlint: disable=SIM003\n"
            "ok = a.time == b.time\n"
        )
        assert lint_source(src, select=["SIM016"]) == []

    def test_multiple_ids_on_one_line(self):
        src = (
            "import random  # shim for both rules  "
            "# simlint: disable=SIM001,SIM002\n"
        )
        assert lint_source(src) == []

    def test_directive_inside_docstring_is_ignored(self):
        src = '"""docs mention # simlint: disable=SIM001 as an example"""\n'
        assert lint_source(src, select=["SIM016"]) == []
        # ...and it is not a live suppression either.
        src = '"""# simlint: disable=SIM001"""\nimport random\n'
        assert "SIM001" in rule_ids(lint_source(src, select=["SIM001"]))


class TestBaseline:
    def _findings(self):
        return lint_source("import random\n", path="pkg/mod.py")

    def test_round_trip_filters_findings(self, tmp_path):
        findings = self._findings()
        baseline = Baseline.from_findings(findings, "legacy shim; issue #12")
        path = tmp_path / "baseline.json"
        baseline.dump(path)
        loaded = Baseline.load(path)
        fresh, stale = loaded.apply(findings)
        assert fresh == []
        assert stale == []

    def test_unjustified_entry_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        payload = {
            "schema": "simlint-baseline/1",
            "entries": [
                {
                    "path": "pkg/mod.py",
                    "rule_id": "SIM001",
                    "message": "m",
                    "justification": "   ",
                }
            ],
        }
        path.write_text(json.dumps(payload))
        with pytest.raises(BaselineError, match="no justification"):
            Baseline.load(path)

    def test_todo_placeholder_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline.from_findings(
            self._findings(), "TODO: justify this accepted finding"
        ).dump(path)
        with pytest.raises(BaselineError, match="no justification"):
            Baseline.load(path)

    def test_stale_entries_surface(self):
        baseline = Baseline.from_findings(self._findings(), "was needed once")
        fresh, stale = baseline.apply([])
        assert fresh == []
        assert [e.rule_id for e in stale] == ["SIM001"]

    def test_line_drift_does_not_unmatch(self):
        findings = self._findings()
        baseline = Baseline.from_findings(findings, "legacy shim")
        moved = [
            Finding(f.path, f.line + 40, f.col, f.rule_id, f.message, f.fixit)
            for f in findings
        ]
        fresh, stale = baseline.apply(moved)
        assert fresh == []
        assert stale == []


def _write_tree(root):
    pkg = root / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    (pkg / "base.py").write_text("VALUE = 1\n")
    (pkg / "mid.py").write_text("from pkg.base import VALUE\nX = VALUE\n")
    (pkg / "leaf.py").write_text("import random\n")
    return pkg


class TestIncrementalCache:
    def test_cold_run_analyzes_everything(self, tmp_path):
        pkg = _write_tree(tmp_path)
        cache = tmp_path / "cache.json"
        findings, journal = lint_paths_cached([str(pkg)], cache)
        assert journal.invalidated == "no cache file"
        assert set(journal.analyzed) == {"pkg", "pkg.base", "pkg.mid", "pkg.leaf"}
        assert journal.reused == []
        assert rule_ids(findings) == ["SIM001"]

    def test_warm_run_reuses_everything_and_replays_findings(self, tmp_path):
        pkg = _write_tree(tmp_path)
        cache = tmp_path / "cache.json"
        first, _ = lint_paths_cached([str(pkg)], cache)
        second, journal = lint_paths_cached([str(pkg)], cache)
        assert journal.analyzed == []
        assert set(journal.reused) == {"pkg", "pkg.base", "pkg.mid", "pkg.leaf"}
        assert second == first

    def test_one_module_change_relints_only_reverse_closure(self, tmp_path):
        """The acceptance-criterion proof: edit pkg.base and only
        pkg.base plus its importer pkg.mid re-analyze."""
        pkg = _write_tree(tmp_path)
        cache = tmp_path / "cache.json"
        lint_paths_cached([str(pkg)], cache)
        (pkg / "base.py").write_text("VALUE = 2\n")
        findings, journal = lint_paths_cached([str(pkg)], cache)
        assert set(journal.analyzed) == {"pkg.base", "pkg.mid"}
        assert set(journal.reused) == {"pkg", "pkg.leaf"}
        assert rule_ids(findings) == ["SIM001"]  # leaf's finding replayed

    def test_removed_module_dirties_its_importers(self, tmp_path):
        pkg = _write_tree(tmp_path)
        cache = tmp_path / "cache.json"
        lint_paths_cached([str(pkg)], cache)
        (pkg / "base.py").unlink()
        _, journal = lint_paths_cached([str(pkg)], cache)
        assert journal.removed == ["pkg.base"]
        assert "pkg.mid" in journal.analyzed

    def test_select_change_invalidates_cache(self, tmp_path):
        pkg = _write_tree(tmp_path)
        cache = tmp_path / "cache.json"
        lint_paths_cached([str(pkg)], cache)
        _, journal = lint_paths_cached([str(pkg)], cache, select=["SIM001"])
        assert journal.invalidated == "rule selection changed"
        assert journal.reused == []


class TestSarif:
    def test_log_structure_and_location(self):
        findings = lint_source("import random\n", path="src/repro/bad.py")
        log = to_sarif(findings)
        assert log["version"] == "2.1.0"
        run = log["runs"][0]
        assert run["tool"]["driver"]["name"] == "simlint"
        rule_ids_in_driver = [r["id"] for r in run["tool"]["driver"]["rules"]]
        assert rule_ids_in_driver == [r.id for r in all_rules()]
        result = run["results"][0]
        assert result["ruleId"] == "SIM001"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "src/repro/bad.py"
        assert location["region"]["startLine"] == 1
        assert location["region"]["startColumn"] == 1  # col 0 -> 1-based

    def test_render_is_valid_json(self):
        text = render_sarif([])
        log = json.loads(text)
        assert log["runs"][0]["results"] == []


class TestCliV2:
    def test_json_format_payload_is_pure(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\n")
        assert lint_main([str(bad), "--format", "json"]) == 1
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert payload[0]["rule_id"] == "SIM001"
        assert "1 finding(s)" in captured.err

    def test_sarif_format(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\n")
        assert lint_main([str(bad), "--format", "sarif"]) == 1
        log = json.loads(capsys.readouterr().out)
        assert log["runs"][0]["results"][0]["ruleId"] == "SIM001"

    def test_cache_and_journal_flags(self, tmp_path, capsys):
        pkg = _write_tree(tmp_path)
        cache = tmp_path / "cache.json"
        journal_file = tmp_path / "journal.json"
        lint_main([str(pkg), "--cache", str(cache)])
        assert (
            lint_main(
                [str(pkg), "--cache", str(cache), "--journal", str(journal_file)]
            )
            == 1
        )
        journal = json.loads(journal_file.read_text())
        assert journal["analyzed"] == []
        assert len(journal["reused"]) == 4
        capsys.readouterr()

    def test_write_baseline_then_enforce_justifications(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\n")
        baseline = tmp_path / "baseline.json"
        assert lint_main([str(bad), "--write-baseline", str(baseline)]) == 0
        # The skeleton's TODO placeholders are not justifications.
        assert lint_main([str(bad), "--baseline", str(baseline)]) == 2
        text = baseline.read_text().replace(
            "TODO: justify this accepted finding", "fixture exercises SIM001"
        )
        baseline.write_text(text)
        assert lint_main([str(bad), "--baseline", str(baseline)]) == 0
        capsys.readouterr()

    def test_stale_baseline_entry_fails(self, tmp_path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        baseline = tmp_path / "baseline.json"
        Baseline.from_findings(
            lint_source("import random\n", path=str(clean)), "was needed"
        ).dump(baseline)
        assert lint_main([str(clean), "--baseline", str(baseline)]) == 1
        assert "stale baseline entry" in capsys.readouterr().out

    def test_syntax_error_is_usage_error(self, tmp_path, capsys):
        broken = tmp_path / "broken.py"
        broken.write_text("def f(:\n")
        assert lint_main([str(broken)]) == 2
        capsys.readouterr()

    def test_changed_since_limits_reported_modules(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        subprocess.run(["git", "init", "-q"], check=True)
        pkg = _write_tree(tmp_path)
        subprocess.run(["git", "add", "."], check=True)
        subprocess.run(
            ["git", "-c", "user.email=t@t", "-c", "user.name=t",
             "commit", "-qm", "seed"],
            check=True,
        )
        # leaf.py carries the only finding but is untouched since HEAD;
        # changing base.py must not surface leaf's finding.
        (pkg / "base.py").write_text("VALUE = 2\n")
        assert lint_main([str(pkg), "--changed-since", "HEAD"]) == 0
        out = capsys.readouterr().out
        assert "no findings" in out

    def test_changed_since_bad_revision_is_usage_error(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        subprocess.run(["git", "init", "-q"], check=True)
        pkg = _write_tree(tmp_path)
        assert lint_main([str(pkg), "--changed-since", "no-such-rev"]) == 2
        capsys.readouterr()
