"""Tests for SACK blocks (sink) and SACK-based recovery (sender)."""

import pytest

from repro.tcp.base import TcpConfig, TcpSink
from tests.helpers import FAST, drop_seqs_once, install_loss, make_pair


def sack_pair(**kwargs):
    config = kwargs.pop("config", TcpConfig(sack=True, **FAST))
    return make_pair("reno", config=config, **kwargs)


class TestSinkBlocks:
    def test_no_blocks_when_in_order(self):
        sim, _star, source, sink = sack_pair()
        source.send_message(10)
        sim.run(until=0.01)
        assert sink._sack_blocks() == ()

    def test_single_block_over_a_hole(self):
        _sim, _star, _source, sink = sack_pair()
        sink._out_of_order = {5, 6, 7}
        assert sink._sack_blocks() == ((5, 8),)

    def test_multiple_runs_highest_first(self):
        _sim, _star, _source, sink = sack_pair()
        sink._out_of_order = {3, 4, 8, 12, 13}
        assert sink._sack_blocks() == ((12, 14), (8, 9), (3, 5))

    def test_at_most_three_blocks(self):
        _sim, _star, _source, sink = sack_pair()
        sink._out_of_order = {2, 5, 8, 11, 14}
        blocks = sink._sack_blocks()
        assert len(blocks) == 3
        assert blocks[0] == (14, 15)  # most recent runs win


class TestScoreboard:
    def test_blocks_fill_scoreboard(self):
        sim, star, source, _sink = sack_pair()
        install_loss(star.bottleneck, drop_seqs_once({4}))
        snapshots = []
        original = source._fast_retransmit
        source._fast_retransmit = lambda: (snapshots.append(set(source._sacked)),
                                           original())
        source.send_message(12)
        sim.run(until=1.0)
        # At fast-retransmit time the scoreboard held data above the hole.
        assert snapshots and 5 in snapshots[0]
        assert all(4 not in s for s in snapshots)

    def test_scoreboard_pruned_by_cumulative_ack(self):
        sim, star, source, _sink = sack_pair()
        install_loss(star.bottleneck, drop_seqs_once({4}))
        source.send_message(12)
        sim.run(until=1.0)
        assert source._sacked == set()  # everything cumulatively acked


class TestSackRecovery:
    # Losses clustered inside one already-grown window: the case SACK
    # was designed for.  (Losses scattered across tiny separate windows
    # can still force an RTO — true of real SACK TCP as well.)
    WINDOW_LOSSES = frozenset({40, 43, 46, 49, 52, 55, 58, 61})

    def test_multi_hole_window_repaired_without_rto(self):
        sim, star, source, sink = sack_pair()
        install_loss(star.bottleneck, drop_seqs_once(self.WINDOW_LOSSES))
        source.send_message(120)
        sim.run(until=1.0)
        assert sink.next_expected == 120
        assert source.stats.timeouts == 0
        assert source.stats.retransmits == len(self.WINDOW_LOSSES)

    def test_plain_reno_same_losses_needs_rto(self):
        sim, star, source, sink = make_pair("reno", config=TcpConfig(**FAST))
        install_loss(star.bottleneck, drop_seqs_once(self.WINDOW_LOSSES))
        source.send_message(120)
        sim.run(until=1.0)
        assert sink.next_expected == 120
        assert source.stats.timeouts >= 1

    def test_sack_faster_than_newreno_for_many_holes(self):
        losses = self.WINDOW_LOSSES

        def run(config):
            sim, star, source, _sink = make_pair("reno", config=config)
            install_loss(star.bottleneck, drop_seqs_once(losses))
            msg = source.send_message(120)
            sim.run(until=2.0)
            assert msg.finish_time is not None
            return msg.completion_time, source.stats.timeouts

        sack_time, sack_rto = run(TcpConfig(sack=True, **FAST))
        newreno_time, _ = run(TcpConfig(recovery="newreno", **FAST))
        assert sack_rto == 0
        # SACK repairs a hole per dupACK; NewReno one hole per RTT.
        assert sack_time < newreno_time

    def test_no_redundant_retransmissions_of_sacked_data(self):
        sim, star, source, sink = sack_pair()
        install_loss(star.bottleneck, drop_seqs_once({5, 6}))
        source.send_message(30)
        sim.run(until=1.0)
        # Only the two lost segments go out again.
        assert source.stats.retransmits == 2
        assert sink.duplicate_segments == 0

    def test_cubic_with_sack_completes_under_heavy_loss(self):
        from repro.tcp.factory import default_config

        config = default_config("cubic", sack=True, **FAST)
        sim, star, source, sink = make_pair("cubic", config=config)
        install_loss(star.bottleneck, drop_seqs_once(set(range(10, 30, 3))))
        source.send_message(80)
        sim.run(until=1.0)
        assert sink.next_expected == 80
        assert source.stats.timeouts == 0

    def test_rto_clears_scoreboard(self):
        sim, star, source, _sink = sack_pair()
        install_loss(star.bottleneck, drop_seqs_once({0, 1}))
        source.send_message(2)
        sim.run(until=1.0)
        assert source._sacked == set()
        assert source.all_acked
