"""Reproducibility: identical seeds give bit-identical results.

The paper's experiments are Monte-Carlo over workloads; for the
reproduction to be reviewable, every run must be a pure function of its
seed.  These tests re-run representative experiments twice and demand
exact equality.
"""

from repro.experiments.concurrency import ConcurrencyParams, run_concurrency
from repro.experiments.fattree import FatTreeParams, run_fattree
from repro.experiments.large_scale import LargeScaleParams, run_large_scale
from repro.experiments.motivation import MotivationParams, run_motivation
from repro.experiments.workload_figs import characterize_workload


class TestDeterminism:
    def test_motivation_reruns_identically(self):
        params = MotivationParams.quick("trim", n_servers=2, n_responses=20,
                                        lpt_bytes=100_000, deadline=1.0)
        a = run_motivation(params)
        b = run_motivation(params)
        assert a.lpt_completion_times == b.lpt_completion_times
        assert a.timeouts_per_connection == b.timeouts_per_connection
        assert a.dropped_packets == b.dropped_packets
        assert a.queue_pkts.values == b.queue_pkts.values

    def test_concurrency_reruns_identically(self):
        params = ConcurrencyParams.quick("reno", deadline=2.0)
        a = run_concurrency(params, n_spts=4)
        b = run_concurrency(params, n_spts=4)
        assert a.act == b.act
        assert a.max_ct == b.max_ct
        assert a.dropped_packets == b.dropped_packets

    def test_large_scale_seeded_by_repeat_index(self):
        params = LargeScaleParams.quick("reno", servers_per_switch=5, repeats=1)
        same_a, _, _ = run_large_scale(params, n_switches=2, repeat_index=0)
        same_b, _, _ = run_large_scale(params, n_switches=2, repeat_index=0)
        other, _, _ = run_large_scale(params, n_switches=2, repeat_index=1)
        assert same_a == same_b
        assert same_a != other  # repeats draw different workloads

    def test_fattree_reruns_identically(self):
        params = FatTreeParams.quick("reno", k=2, total_bytes=50_000, n_small=3)
        a = run_fattree(params)
        b = run_fattree(params)
        assert a.mean_completion == b.mean_completion
        assert a.total_timeouts == b.total_timeouts

    def test_workload_characterization_identical(self):
        a = characterize_workload(seed=5, duration=2.0)
        b = characterize_workload(seed=5, duration=2.0)
        assert a.packet_times == b.packet_times
        assert [t.total_bytes for t in a.trains] == [
            t.total_bytes for t in b.trains
        ]

    def test_different_seeds_differ(self):
        a = characterize_workload(seed=5, duration=2.0)
        b = characterize_workload(seed=6, duration=2.0)
        assert a.packet_times != b.packet_times
