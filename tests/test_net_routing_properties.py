"""Property tests for routing: agreement with networkx shortest paths.

Random two-tier topologies (a connected random switch mesh with hosts
hanging off random switches) are routed by ``build_routing_tables`` and
cross-checked against networkx: every host pair must be reachable, and
the delivered hop count must equal the graph-theoretic shortest path.
"""

import networkx as nx
import numpy as np
import pytest

from repro.net.node import Host
from repro.net.packet import DATA, Packet
from repro.net.topology import Network
from repro.sim.kernel import Simulator


class CollectingAgent:
    def __init__(self):
        self.packets = []

    def receive_packet(self, pkt):
        self.packets.append(pkt)


def random_topology(seed):
    """A connected random switch mesh with one host per switch."""
    rng = np.random.default_rng(seed)
    n_switches = int(rng.integers(2, 8))
    mesh = nx.gnp_random_graph(n_switches, 0.5, seed=int(seed))
    # Ensure connectivity by chaining the components.
    components = [list(c) for c in nx.connected_components(mesh)]
    for a, b in zip(components, components[1:]):
        mesh.add_edge(a[0], b[0])

    sim = Simulator()
    net = Network(sim)
    switches = [net.add_switch(f"s{i}") for i in range(n_switches)]
    hosts = []
    graph = nx.Graph()
    for u, v in mesh.edges:
        net.connect(switches[u], switches[v], 1e9, 1e-6)
        graph.add_edge(f"s{u}", f"s{v}")
    for i, switch in enumerate(switches):
        host = net.add_host(f"h{i}")
        net.connect(host, switch, 1e9, 1e-6)
        graph.add_edge(f"h{i}", f"s{i}")
        hosts.append(host)
    net.finalize_routes()
    return sim, net, hosts, graph


@pytest.mark.parametrize("seed", range(12))
def test_all_pairs_hop_counts_match_networkx(seed):
    sim, _net, hosts, graph = random_topology(seed)
    agents = {}
    flow = 0
    expectations = []
    for src in hosts:
        for dst in hosts:
            if src is dst:
                continue
            flow += 1
            agent = CollectingAgent()
            dst.attach_agent(flow, agent)
            src.send(Packet(flow_id=flow, src=src.node_id,
                            dst=dst.node_id, kind=DATA, seq=0))
            agents[flow] = agent
            expectations.append(
                (flow, nx.shortest_path_length(graph, src.name, dst.name))
            )
    sim.run()
    for flow, expected_hops in expectations:
        packets = agents[flow].packets
        assert len(packets) == 1, f"flow {flow} not delivered exactly once"
        assert packets[0].hops == expected_hops


@pytest.mark.parametrize("seed", range(6))
def test_routes_only_point_one_hop_closer(seed):
    """Next hops in every table are strictly closer to the destination."""
    _sim, net, hosts, graph = random_topology(seed)
    from repro.net.node import Switch

    for node in net.nodes:
        if not isinstance(node, Switch):
            continue
        for dst_id, next_hops in node.routes.items():
            dst = next(n for n in net.nodes if n.node_id == dst_id)
            here = nx.shortest_path_length(graph, node.name, dst.name)
            for hop_id in next_hops:
                hop = next(n for n in net.nodes if n.node_id == hop_id)
                there = nx.shortest_path_length(graph, hop.name, dst.name)
                assert there == here - 1
