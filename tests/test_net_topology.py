"""Unit tests for topology builders and routing tables."""

import pytest

from repro.net.node import Host, Switch
from repro.net.packet import DATA, Packet
from repro.net.queues import DropTailQueue, EcnQueue
from repro.net.topology import (
    Network,
    build_fat_tree,
    build_multi_hop,
    build_star,
    build_two_level_tree,
)
from repro.sim.kernel import Simulator


class StubAgent:
    def __init__(self):
        self.received = []

    def receive_packet(self, pkt):
        self.received.append(pkt)


def deliver(sim, network, src_host, dst_host, flow_id=1):
    """Send one data packet through the network; returns the stub agent."""
    agent = StubAgent()
    dst_host.attach_agent(flow_id, agent)
    pkt = Packet(flow_id=flow_id, src=src_host.node_id, dst=dst_host.node_id,
                 kind=DATA, seq=0)
    src_host.send(pkt)
    sim.run()
    return agent


class TestNetwork:
    def test_connect_creates_duplex_links(self):
        sim = Simulator()
        net = Network(sim)
        a, b = net.add_host("a"), net.add_host("b")
        fwd, rev = net.connect(a, b, 1e9, 1e-6)
        assert fwd.src_node is a and fwd.dst_node is b
        assert rev.src_node is b and rev.dst_node is a
        assert len(net.links) == 2

    def test_switch_queues_mark_when_ecn_enabled(self):
        sim = Simulator()
        net = Network(sim, ecn_threshold_pkts=5)
        sw, host = net.add_switch("s"), net.add_host("h")
        fwd, _rev = net.connect(sw, host, 1e9, 1e-6, buffer_pkts=10)
        assert isinstance(fwd.queue, EcnQueue)
        assert fwd.queue.mark_threshold_pkts == 5

    def test_host_queues_never_mark(self):
        sim = Simulator()
        net = Network(sim, ecn_threshold_pkts=5)
        sw, host = net.add_switch("s"), net.add_host("h")
        _fwd, rev = net.connect(sw, host, 1e9, 1e-6, buffer_pkts=10)
        assert isinstance(rev.queue, DropTailQueue)
        assert not isinstance(rev.queue, EcnQueue)

    def test_host_buffer_defaults_to_switch_buffer(self):
        sim = Simulator()
        net = Network(sim)
        sw, host = net.add_switch("s"), net.add_host("h")
        _fwd, rev = net.connect(sw, host, 1e9, 1e-6, buffer_pkts=37)
        assert rev.queue.capacity_pkts == 37

    def test_host_buffer_override(self):
        sim = Simulator()
        net = Network(sim)
        sw, host = net.add_switch("s"), net.add_host("h")
        _fwd, rev = net.connect(sw, host, 1e9, 1e-6, buffer_pkts=37,
                                host_buffer_pkts=500)
        assert rev.queue.capacity_pkts == 500

    def test_link_between(self):
        sim = Simulator()
        net = Network(sim)
        a, b = net.add_host("a"), net.add_host("b")
        fwd, _ = net.connect(a, b, 1e9, 1e-6)
        assert net.link_between(a, b) is fwd
        with pytest.raises(KeyError):
            net.link_between(a, net.add_host("c"))

    def test_node_ids_unique(self):
        net = Network(Simulator())
        ids = [net.add_host(f"h{i}").node_id for i in range(5)]
        assert len(set(ids)) == 5


class TestStar:
    def test_structure(self):
        star = build_star(Simulator(), 5)
        assert len(star.servers) == 5
        assert isinstance(star.switch, Switch)
        assert isinstance(star.frontend, Host)
        # 6 duplex cables = 12 links
        assert len(star.network.links) == 12

    def test_bottleneck_is_switch_to_frontend(self):
        star = build_star(Simulator(), 3)
        assert star.bottleneck.src_node is star.switch
        assert star.bottleneck.dst_node is star.frontend

    def test_server_to_frontend_delivery(self):
        sim = Simulator()
        star = build_star(sim, 3)
        agent = deliver(sim, star.network, star.servers[1], star.frontend)
        assert len(agent.received) == 1

    def test_frontend_to_server_delivery(self):
        sim = Simulator()
        star = build_star(sim, 3)
        agent = deliver(sim, star.network, star.frontend, star.servers[2])
        assert len(agent.received) == 1

    def test_frontend_bandwidth_override(self):
        star = build_star(Simulator(), 2, bandwidth_bps=1e9,
                          frontend_bandwidth_bps=10e9)
        assert star.bottleneck.bandwidth_bps == 10e9

    def test_needs_a_server(self):
        with pytest.raises(ValueError):
            build_star(Simulator(), 0)


class TestTwoLevelTree:
    def test_structure(self):
        tree = build_two_level_tree(Simulator(), n_switches=3, servers_per_switch=4)
        assert len(tree.edge_switches) == 3
        assert len(tree.servers) == 12
        assert all(len(g) == 4 for g in tree.server_groups)

    def test_server_reaches_frontend(self):
        sim = Simulator()
        tree = build_two_level_tree(sim, n_switches=2, servers_per_switch=2)
        agent = deliver(sim, tree.network, tree.server_groups[1][0], tree.frontend)
        assert len(agent.received) == 1
        # Path: server -> edge -> fabric -> frontend = 3 hops.
        assert agent.received[0].hops == 3


class TestMultiHop:
    def test_structure(self):
        topo = build_multi_hop(Simulator(), group_size=4)
        for group in (topo.group_a, topo.group_b, topo.group_c, topo.group_d):
            assert len(group) == 4

    def test_group_a_crosses_both_trunks(self):
        sim = Simulator()
        topo = build_multi_hop(sim, group_size=2)
        agent = deliver(sim, topo.network, topo.group_a[0], topo.frontend)
        # a -> sw1 -> sw2 -> frontend = 3 hops
        assert agent.received[0].hops == 3

    def test_group_c_reaches_group_d(self):
        sim = Simulator()
        topo = build_multi_hop(sim, group_size=2)
        agent = deliver(sim, topo.network, topo.group_c[1], topo.group_d[1])
        assert len(agent.received) == 1


class TestFatTree:
    def test_host_count(self):
        for k in (2, 4, 6):
            ft = build_fat_tree(Simulator(), k)
            assert len(ft.hosts) == k**3 // 4

    def test_switch_counts(self):
        ft = build_fat_tree(Simulator(), 4)
        assert len(ft.core) == 4
        assert all(len(p) == 2 for p in ft.aggregation)
        assert all(len(p) == 2 for p in ft.edge)

    def test_odd_k_rejected(self):
        with pytest.raises(ValueError):
            build_fat_tree(Simulator(), 3)
        with pytest.raises(ValueError):
            build_fat_tree(Simulator(), 0)

    def test_intra_pod_delivery(self):
        sim = Simulator()
        ft = build_fat_tree(sim, 4)
        # hosts 0 and 1 share an edge switch
        agent = deliver(sim, ft.network, ft.hosts[0], ft.hosts[1])
        assert agent.received[0].hops == 2  # host->edge->host

    def test_inter_pod_delivery(self):
        sim = Simulator()
        ft = build_fat_tree(sim, 4)
        src = ft.hosts[0]
        dst = ft.hosts[-1]  # last pod
        agent = deliver(sim, ft.network, src, dst)
        # host->edge->agg->core->agg->edge->host = 6 hops
        assert agent.received[0].hops == 6

    def test_ecmp_route_multiplicity(self):
        ft = build_fat_tree(Simulator(), 4)
        edge0 = ft.edge[0][0]
        far_host = ft.hosts[-1]
        # Towards another pod, the edge switch should see k/2 uplinks.
        assert len(edge0.routes[far_host.node_id]) == 2

    def test_all_pairs_reachable_small(self):
        sim = Simulator()
        ft = build_fat_tree(sim, 2)
        for i, src in enumerate(ft.hosts):
            for j, dst in enumerate(ft.hosts):
                if i == j:
                    continue
                agent = StubAgent()
                dst.attach_agent(100 + i * 10 + j, agent)
                src.send(Packet(flow_id=100 + i * 10 + j, src=src.node_id,
                                dst=dst.node_id, kind=DATA, seq=0))
        sim.run()
