"""Driver and experiment-level tests for the open-loop engine."""

import pytest

from repro.experiments import registry
from repro.experiments.openloop import (
    OpenLoopExperiment,
    OpenLoopParams,
    run_openloop_point,
)
from repro.http.openloop import (
    OpenLoopDriver,
    PoissonArrivals,
    SessionConfig,
    compile_schedule,
)
from repro.net.topology import build_star
from repro.obs import Telemetry, TraceSpec, write_jsonl
from repro.sim.kernel import Simulator


def drive(seed=3, telemetry=None, **driver_kwargs):
    schedule = compile_schedule(
        PoissonArrivals(80.0),
        SessionConfig(mean_requests=2.0, think_time_s=0.02),
        seed=seed,
        horizon=0.5,
    )
    sim = Simulator(telemetry=telemetry)
    star = build_star(sim, 2)
    driver_kwargs.setdefault("idle_timeout_s", 0.1)
    driver = OpenLoopDriver(
        sim, star.frontend, star.servers, "reno", **driver_kwargs
    )
    run = driver.play(schedule)
    sim.run(until=1.0)
    return schedule, driver, run


class TestOpenLoopDriver:
    def test_all_offered_requests_complete(self):
        schedule, driver, run = drive()
        assert run.offered == len(schedule)
        assert run.issued == run.offered
        assert run.completed == run.offered
        assert run.in_flight == 0
        assert len(run.latencies) == run.completed
        assert all(latency > 0 for latency in run.latencies)
        assert run.bytes_completed == schedule.total_bytes
        driver.check_conservation()

    def test_pool_stats_aggregate_servers(self):
        _, driver, run = drive()
        stats = driver.pool_stats()
        assert stats.leases == run.issued
        assert stats.opened >= len(driver.pools)  # both servers hit
        assert 0.0 < stats.reuse_fraction <= 1.0

    def test_sessions_roster_tracks_every_open(self):
        _, driver, _ = drive()
        assert len(driver.sessions) == driver.pool_stats().opened
        assert driver.total_timeouts() >= 0

    def test_requires_servers(self):
        sim = Simulator()
        star = build_star(sim, 1)
        with pytest.raises(ValueError):
            OpenLoopDriver(sim, star.frontend, [], "reno")

    def test_session_telemetry_emitted(self):
        telemetry = Telemetry(TraceSpec.parse("session,pool"))
        schedule, _, run = drive(telemetry=telemetry)
        session_rows = [r.row() for r in telemetry.records("session")]
        requests = [r for r in session_rows if r["event"] == "request"]
        completes = [r for r in session_rows if r["event"] == "complete"]
        assert len(requests) == run.issued
        assert len(completes) == run.completed
        assert all("size" in r for r in requests)
        assert all(r["latency"] > 0 for r in completes)
        assert telemetry.records("pool")  # churn was recorded

    def test_telemetry_deterministic_across_runs(self, tmp_path):
        one = Telemetry(TraceSpec.parse("session,pool"))
        two = Telemetry(TraceSpec.parse("session,pool"))
        drive(telemetry=one)
        drive(telemetry=two)
        a = write_jsonl(one.rows(), tmp_path / "a.jsonl")
        b = write_jsonl(two.rows(), tmp_path / "b.jsonl")
        assert a.read_bytes() == b.read_bytes()


class TestOpenLoopExperiment:
    def test_registered(self):
        assert isinstance(registry.get("openloop"), OpenLoopExperiment)
        assert registry.get("openloop").accepts_openloop

    def test_points_one_per_load_factor(self):
        exp = OpenLoopExperiment()
        params = OpenLoopParams(load_factors=(0.5, 1.0, 2.0))
        points = exp.points(params)
        assert [p.label for p in points] == ["load0.5", "load1", "load2"]

    def test_replay_collapses_to_one_point(self):
        exp = OpenLoopExperiment()
        params = OpenLoopParams(replay=((0.01, 0, 1000), (0.02, 1, 2000)))
        points = exp.points(params)
        assert [p.label for p in points] == ["replay"]

    def test_run_point_deterministic(self):
        params = OpenLoopParams.quick()
        one = run_openloop_point(params, 1.0, seed=5)
        two = run_openloop_point(params, 1.0, seed=5)
        assert one == two

    def test_run_point_measures_load(self):
        params = OpenLoopParams.quick()
        case = run_openloop_point(params, 1.0, seed=5)
        assert case.offered > 0
        assert case.completed == case.offered
        assert case.latency_p50 is not None
        assert case.latency_p99 >= case.latency_p50
        assert case.conns_opened >= params.n_servers

    def test_replay_point_runs(self):
        params = OpenLoopParams.quick(
            replay=((0.01, 0, 1460), (0.05, 1, 2920), (0.08, 0, 1460)),
        )
        case = run_openloop_point(params, 1.0, seed=9)
        assert case.offered == 3
        assert case.completed == 3

    def test_offered_load_scales_with_factor(self):
        params = OpenLoopParams.quick()
        low = run_openloop_point(params, 0.5, seed=4)
        high = run_openloop_point(params, 4.0, seed=4)
        assert high.offered > low.offered

    def test_quick_params_sane(self):
        params = OpenLoopParams.quick("trim")
        assert params.protocol == "trim"
        assert len(params.load_factors) == 2
        config = params.session_config()
        assert config.mean_requests == params.mean_requests
