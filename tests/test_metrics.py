"""Unit tests for completion statistics and network monitors."""

import numpy as np
import pytest

from repro.metrics.monitors import (
    CwndTracer,
    GoodputMeter,
    QueueMonitor,
    SinkThroughputMonitor,
    ThroughputMonitor,
)
from repro.metrics.stats import (
    act,
    cdf_points,
    completion_times,
    jain_fairness,
    percentile,
    summarize,
)
from repro.tcp.base import Message
from tests.helpers import make_pair


def msg(submit, finish):
    m = Message(message_id=0, start_seq=0, end_seq=1, submit_time=submit)
    m.finish_time = finish
    return m


class TestStats:
    def test_completion_times_filters_unfinished(self):
        done = msg(0.0, 1.5)
        pending = Message(message_id=1, start_seq=1, end_seq=2, submit_time=0.0)
        assert completion_times([done, pending]) == [1.5]

    def test_completion_time_property_raises_when_pending(self):
        pending = Message(message_id=1, start_seq=1, end_seq=2, submit_time=0.0)
        with pytest.raises(ValueError):
            pending.completion_time

    def test_act(self):
        assert act([1.0, 2.0, 3.0]) == 2.0

    def test_act_empty_raises(self):
        with pytest.raises(ValueError):
            act([])

    def test_percentile(self):
        times = list(range(1, 101))
        assert percentile(times, 50) == pytest.approx(50.5)
        with pytest.raises(ValueError):
            percentile(times, 101)
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_summarize(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4
        assert s.mean == 2.5
        assert s.minimum == 1.0
        assert s.maximum == 4.0

    def test_summarize_row_format(self):
        row = summarize([0.001, 0.002]).as_row()
        assert "mean=" in row and "p99=" in row

    def test_cdf_points(self):
        values, probs = cdf_points([3.0, 1.0, 2.0])
        assert list(values) == [1.0, 2.0, 3.0]
        assert list(probs) == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_cdf_points_empty_raises(self):
        with pytest.raises(ValueError):
            cdf_points([])

    def test_jain_perfect_fairness(self):
        assert jain_fairness([5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_jain_single_hog(self):
        assert jain_fairness([10.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_jain_validation(self):
        with pytest.raises(ValueError):
            jain_fairness([])
        with pytest.raises(ValueError):
            jain_fairness([-1.0])

    def test_jain_all_zero(self):
        assert jain_fairness([0.0, 0.0]) == 1.0


class TestStatsAcceptNumpyArrays:
    """Experiment reducers hand these functions numpy arrays directly.

    Regression guard: the emptiness checks must use ``len()``, because
    ``not arr`` raises "truth value of an array is ambiguous" for any
    numpy array longer than one element.
    """

    TIMES = np.array([1.0, 2.0, 3.0, 4.0])

    def test_act_on_array(self):
        assert act(self.TIMES) == pytest.approx(2.5)

    def test_percentile_on_array(self):
        assert percentile(self.TIMES, 50) == pytest.approx(2.5)

    def test_summarize_on_array(self):
        s = summarize(self.TIMES)
        assert (s.count, s.minimum, s.maximum) == (4, 1.0, 4.0)

    def test_jain_on_array(self):
        assert jain_fairness(np.array([5.0, 5.0])) == pytest.approx(1.0)

    def test_cdf_points_on_array(self):
        values, _probs = cdf_points(np.array([3.0, 1.0]))
        assert list(values) == [1.0, 3.0]

    def test_empty_arrays_still_raise(self):
        empty = np.array([])
        for fn in (act, summarize, cdf_points, jain_fairness):
            with pytest.raises(ValueError):
                fn(empty)
        with pytest.raises(ValueError):
            percentile(empty, 50)


class TestMonitors:
    def test_queue_monitor_records_backlog(self):
        sim, star, source, _sink = make_pair(frontend_bandwidth=100e6)
        monitor = QueueMonitor(sim, star.bottleneck, period=1e-3).start(0.0)
        source.send_message(500)
        sim.run(until=0.05)
        assert monitor.peak_pkts > 0
        assert monitor.average_pkts >= 0

    def test_throughput_monitor_measures_line_rate(self):
        sim, star, source, _sink = make_pair()
        monitor = ThroughputMonitor(sim, star.bottleneck, period=1e-3).start(0.0)
        source.send_message(3000)
        sim.run(until=0.04)
        # Mid-transfer bins should be near 1 Gbps.
        peak = monitor.series.max()
        assert peak == pytest.approx(1e9, rel=0.05)

    def test_goodput_meter(self):
        sim, _star, source, sink = make_pair()
        meter = GoodputMeter(sim, sink)
        sim.schedule_at(0.001, meter.start)
        source.send_message(1000)
        sim.run(until=0.05)
        goodput = meter.goodput_bps()
        expected = 1000 * 1460 * 8 / (0.05 - 0.001)
        assert goodput == pytest.approx(expected, rel=0.05)

    def test_goodput_meter_requires_start(self):
        sim, _star, _source, sink = make_pair()
        with pytest.raises(RuntimeError):
            GoodputMeter(sim, sink).goodput_bps()

    def test_sink_throughput_monitor(self):
        sim, _star, source, sink = make_pair()
        monitor = SinkThroughputMonitor(sim, sink, period=1e-3).start(0.0)
        source.send_message(3000)
        sim.run(until=0.04)
        assert monitor.series.max() == pytest.approx(1e9, rel=0.1)
        assert monitor.mean_bps(0.0, 0.04) > 0

    def test_cwnd_tracer(self):
        sim, _star, source, _sink = make_pair()
        tracer = CwndTracer(sim, source, period=1e-3).start(0.0)
        source.send_message(100)
        sim.run(until=0.02)
        assert tracer.series.values[0] == pytest.approx(2.0)
        assert tracer.series.max() > 50
