"""Tests for the leaf-spine topology."""

import pytest

from repro.net.packet import DATA, Packet
from repro.net.topology import build_leaf_spine
from repro.sim.kernel import Simulator
from repro.tcp.base import TcpConfig, TcpSink
from repro.tcp.factory import create_source
from tests.helpers import FAST


class StubAgent:
    def __init__(self):
        self.received = []

    def receive_packet(self, pkt):
        self.received.append(pkt)


class TestStructure:
    def test_counts(self):
        ls = build_leaf_spine(Simulator(), n_leaves=4, n_spines=2, hosts_per_leaf=3)
        assert len(ls.leaves) == 4
        assert len(ls.spines) == 2
        assert len(ls.hosts) == 12

    def test_validation(self):
        with pytest.raises(ValueError):
            build_leaf_spine(Simulator(), 0, 2, 3)
        with pytest.raises(ValueError):
            build_leaf_spine(Simulator(), 2, 0, 3)
        with pytest.raises(ValueError):
            build_leaf_spine(Simulator(), 2, 2, 0)


class TestRouting:
    def _deliver(self, sim, src, dst, flow_id):
        agent = StubAgent()
        dst.attach_agent(flow_id, agent)
        src.send(Packet(flow_id=flow_id, src=src.node_id, dst=dst.node_id,
                        kind=DATA, seq=0))
        sim.run()
        return agent.received

    def test_intra_leaf_two_hops(self):
        sim = Simulator()
        ls = build_leaf_spine(sim, 2, 2, 2)
        received = self._deliver(sim, ls.host_groups[0][0], ls.host_groups[0][1], 1)
        assert received[0].hops == 2  # host -> leaf -> host

    def test_cross_leaf_four_hops(self):
        sim = Simulator()
        ls = build_leaf_spine(sim, 2, 2, 2)
        received = self._deliver(sim, ls.host_groups[0][0], ls.host_groups[1][0], 1)
        assert received[0].hops == 4  # host -> leaf -> spine -> leaf -> host

    def test_ecmp_across_all_spines(self):
        ls = build_leaf_spine(Simulator(), 2, 4, 1)
        leaf = ls.leaves[0]
        remote_host = ls.host_groups[1][0]
        assert len(leaf.routes[remote_host.node_id]) == 4

    def test_tcp_flow_end_to_end(self):
        sim = Simulator()
        ls = build_leaf_spine(sim, 2, 2, 2, host_bandwidth_bps=1e9,
                              fabric_bandwidth_bps=1e9)
        source = create_source(
            "reno", sim, ls.host_groups[0][0], flow_id=1,
            dst_id=ls.host_groups[1][1].node_id, config=TcpConfig(**FAST),
        )
        sink = TcpSink(sim, ls.host_groups[1][1], flow_id=1)
        source.send_message(200)
        sim.run(until=1.0)
        assert sink.next_expected == 200

    def test_incast_across_fabric(self):
        """Many-to-one across leaves: the receiver's leaf egress is the
        bottleneck, and every flow completes."""
        sim = Simulator()
        ls = build_leaf_spine(sim, 3, 2, 4, host_bandwidth_bps=1e9,
                              fabric_bandwidth_bps=2e9, buffer_pkts=64)
        target = ls.host_groups[0][0]
        messages = []
        flow = 10
        for group in ls.host_groups[1:]:
            for host in group:
                src = create_source(
                    "reno", sim, host, flow_id=flow,
                    dst_id=target.node_id, config=TcpConfig(**FAST),
                )
                TcpSink(sim, target, flow_id=flow)
                messages.append(src.send_message(50))
                flow += 1
        sim.run(until=2.0)
        assert all(m.finish_time is not None for m in messages)
