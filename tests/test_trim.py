"""Unit and behavioural tests for TCP-TRIM (Algorithms 1 and 2)."""

import pytest

from repro.core import kguide
from repro.core.trim import TrimSource
from repro.net.packet import Packet
from repro.tcp.base import TcpConfig
from tests.helpers import FAST, drop_seqs_once, install_loss, make_pair

CAPACITY_PPS = 1e9 / (8 * 1460)


def trim_pair(**kwargs):
    kwargs.setdefault("capacity_pps", CAPACITY_PPS)
    config = kwargs.pop("config", TcpConfig(**FAST))
    return make_pair("trim", config=config, **kwargs)


class TestGapDetection:
    def test_first_train_sends_without_probing(self):
        sim, _star, source, _sink = trim_pair()
        source.send_message(10)
        sim.run(until=0.01)
        assert source.probes_completed == 0
        assert not source.probing

    def test_idle_gap_triggers_probe(self):
        sim, _star, source, _sink = trim_pair()
        source.send_message(50)
        sim.run(until=0.01)
        # Idle far longer than smooth_RTT (~0.2 ms), then a new train.
        sim.schedule_at(0.02, lambda: source.send_message(50))
        sim.run(until=0.03)
        assert source.probes_completed == 1

    def test_no_probe_when_continuously_sending(self):
        sim, _star, source, _sink = trim_pair()
        source.send_message(2000)
        sim.run(until=0.1)
        assert source.probes_completed == 0

    def test_probe_packets_flagged(self):
        sim, star, source, _sink = trim_pair()
        probes = []
        original = star.bottleneck.send

        def spy(pkt):
            if pkt.is_data and pkt.is_probe:
                probes.append(pkt.seq)
            original(pkt)

        star.bottleneck.send = spy
        source.send_message(20)
        sim.run(until=0.01)
        sim.schedule_at(0.02, lambda: source.send_message(20))
        sim.run(until=0.05)
        assert len(probes) == 2  # exactly two probes for the second train

    def test_transmission_suspended_while_probing(self):
        sim, _star, source, _sink = trim_pair()
        source.send_message(20)
        sim.run(until=0.01)
        sim.schedule_at(0.02, lambda: source.send_message(100))
        # Immediately after the train starts, only the 2 probes are out.
        sim.run(until=0.02 + 20e-6)
        assert source.probing
        assert source.suspended
        assert source.t_seqno == 22  # 20 earlier + 2 probes

    def test_tiny_train_still_probes(self):
        sim, _star, source, sink = trim_pair()
        source.send_message(20)
        sim.run(until=0.01)
        sim.schedule_at(0.02, lambda: source.send_message(1))
        sim.run(until=0.05)
        assert source.probes_completed == 1
        assert sink.next_expected == 21

    def test_saved_window_restored_when_uncongested(self):
        sim, _star, source, _sink = trim_pair()
        source.send_message(100)
        sim.run(until=0.01)
        cwnd_before = source.cwnd
        sim.schedule_at(0.05, lambda: source.send_message(100))
        sim.run(until=0.06)
        # Network idle during the probe: probe_RTT ~= min_RTT, so the
        # inherited window survives nearly intact (Eq. 1 factor ~1).
        assert source.probes_completed == 1
        assert source.cwnd >= 0.8 * cwnd_before


class TestEquationOne:
    def test_window_tuned_by_probe_rtt(self):
        _sim, _star, source, _sink = trim_pair()
        source.min_rtt = 1e-3
        source._saved_cwnd = 100.0
        source.probing = True
        source._probe_rtts = [1.5e-3, 1.5e-3]  # 50% above min_RTT
        source._finish_probe(success=True)
        assert source.cwnd == pytest.approx(50.0)

    def test_negative_result_clamps_to_min(self):
        _sim, _star, source, _sink = trim_pair()
        source.min_rtt = 1e-3
        source._saved_cwnd = 100.0
        source.probing = True
        source._probe_rtts = [3e-3]  # factor 1-(2) = -1
        source._finish_probe(success=True)
        assert source.cwnd == source.config.min_cwnd

    def test_never_exceeds_saved_window(self):
        _sim, _star, source, _sink = trim_pair()
        source.min_rtt = 1e-3
        source._saved_cwnd = 10.0
        source.probing = True
        source._probe_rtts = [1e-3]  # factor exactly 1
        source._finish_probe(success=True)
        assert source.cwnd == pytest.approx(10.0)

    def test_failed_probe_resets_to_min_window(self):
        _sim, _star, source, _sink = trim_pair()
        source.min_rtt = 1e-3
        source._saved_cwnd = 100.0
        source.probing = True
        source._probe_rtts = []
        source._finish_probe(success=False)
        assert source.cwnd == source.config.min_cwnd


class TestProbeDeadline:
    def test_lost_probes_fall_back_to_min_window(self):
        sim, star, source, _sink = trim_pair()
        source.send_message(20)
        sim.run(until=0.01)
        # Drop the two probe segments of the next train.
        install_loss(star.bottleneck, drop_seqs_once({20, 21}))
        sim.schedule_at(0.02, lambda: source.send_message(30))
        sim.run(until=1.0)
        assert source.probes_timed_out >= 1
        assert source.all_acked  # loss is still repaired afterwards

    def test_deadline_resumes_transmission(self):
        sim, star, source, _sink = trim_pair()
        source.send_message(20)
        sim.run(until=0.01)
        install_loss(star.bottleneck, drop_seqs_once({20, 21}))
        sim.schedule_at(0.02, lambda: source.send_message(30))
        sim.run(until=0.025)
        assert not source.suspended


class TestConstructorValidation:
    @pytest.mark.parametrize("base_rtt", [0.0, -1e-3])
    def test_non_positive_base_rtt_rejected(self, base_rtt):
        # Eq. (1) divides by min_RTT, which base_rtt seeds; a falsy-but-
        # accepted 0.0 here was the original truthiness bug's entry door.
        with pytest.raises(ValueError, match="base_rtt"):
            trim_pair(base_rtt=base_rtt)

    @pytest.mark.parametrize("capacity_pps", [0.0, -100.0])
    def test_non_positive_capacity_rejected(self, capacity_pps):
        with pytest.raises(ValueError, match="capacity_pps"):
            trim_pair(capacity_pps=capacity_pps)

    def test_positive_values_accepted(self):
        _sim, _star, source, _sink = trim_pair(base_rtt=1e-6)
        assert source.min_rtt == 1e-6

    def test_unset_min_rtt_demotes_probe_success(self):
        # ``is not None``, not truthiness: only a genuinely absent
        # min_RTT falls back to the minimum window on a successful round.
        _sim, _star, source, _sink = trim_pair()
        source.min_rtt = None
        source._saved_cwnd = 100.0
        source.probing = True
        source._probe_rtts = [1e-3]
        source._finish_probe(success=True)
        assert source.probes_completed == 0
        assert source.cwnd == source.config.min_cwnd

    def test_tiny_positive_min_rtt_still_inherits(self):
        _sim, _star, source, _sink = trim_pair()
        source.min_rtt = 1e-9
        source._saved_cwnd = 100.0
        source.probing = True
        source._probe_rtts = [1e-9]  # factor exactly 1
        source._finish_probe(success=True)
        assert source.probes_completed == 1
        assert source.cwnd == pytest.approx(100.0)


def probe_ack(source, seq, rtt):
    """A hand-crafted ACK echoing probe segment ``seq`` with ``rtt``."""
    pkt = Packet(source.flow_id, 0, 1, "ack", ack=seq + 1)
    pkt.for_seq = seq
    pkt.ts_echo = source.sim.now - rtt
    pkt.echo_probe = True
    return pkt


def probing_pair():
    """A TRIM source suspended mid-probe with both probe packets lost.

    Dropping the probes on the wire lets each test hand-deliver their
    ACKs (or none) in any interleaving via ``_on_ack_pre_increase``.
    """
    sim, star, source, sink = trim_pair()
    source.send_message(20)
    sim.run(until=0.01)
    install_loss(star.bottleneck, lambda pkt: pkt.is_probe)
    sim.schedule_at(0.02, lambda: source.send_message(10))
    sim.run(until=0.02 + 1e-5)
    assert source.probing and len(source._probe_seqs) == 2
    return sim, star, source, sink


class TestProbeDeadlineRearm:
    def test_first_probe_ack_rearms_the_deadline(self):
        sim, _star, source, _sink = probing_pair()
        first, _second = sorted(source._probe_seqs)
        old_deadline = source._probe_deadline
        assert source._on_ack_pre_increase(0, probe_ack(source, first, 2e-4))
        # Still probing — but on a fresh deadline one smooth_RTT out, so
        # the trailing ACK is not condemned by the leading one's clock.
        assert source.probing
        assert old_deadline.cancelled
        fresh = source._probe_deadline
        assert fresh is not old_deadline and not fresh.cancelled
        assert fresh.time == pytest.approx(sim.now + source.smooth_rtt.value)

    def test_both_acks_complete_and_apply_eq1(self):
        _sim, _star, source, _sink = probing_pair()
        saved = source._saved_cwnd
        min_rtt = source.min_rtt
        r1, r2 = 1.5 * min_rtt, 1.7 * min_rtt
        first, second = sorted(source._probe_seqs)
        source._on_ack_pre_increase(0, probe_ack(source, first, r1))
        source._on_ack_pre_increase(0, probe_ack(source, second, r2))
        assert not source.probing and not source.suspended
        assert source.probes_completed == 1
        assert source.probes_timed_out == 0
        factor = 1.0 - ((r1 + r2) / 2 - min_rtt) / min_rtt
        expected = min(saved, max(source.config.min_cwnd, saved * factor))
        assert source.cwnd == pytest.approx(expected)
        assert source._probe_deadline is None

    def test_timeout_after_rearm_falls_back_to_min_window(self):
        sim, _star, source, _sink = probing_pair()
        first, _second = sorted(source._probe_seqs)
        source._on_ack_pre_increase(0, probe_ack(source, first, 2e-4))
        assert source.probing
        sim.run(until=source._probe_deadline.time + 1e-6)
        assert source.probes_timed_out == 1
        assert source.probes_completed == 0
        assert not source.probing and not source.suspended
        assert source.cwnd == source.config.min_cwnd

    def test_karn_filtered_probe_ack_contributes_no_rtt(self):
        _sim, _star, source, _sink = probing_pair()
        first, _second = sorted(source._probe_seqs)
        retx_ack = probe_ack(source, first, 2e-4)
        retx_ack.echo_retx = True
        assert source._on_ack_pre_increase(0, retx_ack)
        assert source._probe_rtts == []  # sample rejected, seq consumed
        assert first not in source._probe_seqs

    def test_late_probe_ack_after_finish_is_harmless(self):
        sim, _star, source, _sink = probing_pair()
        seqs = sorted(source._probe_seqs)
        sim.run(until=source._probe_deadline.time + 1e-6)  # deadline fires
        assert not source.probing
        source._on_ack_pre_increase(0, probe_ack(source, seqs[0], 2e-4))
        assert not source.probing
        assert source.probes_timed_out == 1


class TestQueuingControl:
    def test_delay_decrease_applies_eq3(self):
        _sim, _star, source, _sink = trim_pair()
        source.k = 1e-3
        source.min_rtt = 0.5e-3
        source.cwnd = 40.0
        source.ssthresh = 1e12

        class FakeAck:
            echo_probe = False
            echo_retx = False
            for_seq = 0
            ack = 10
            ts_echo = 0.0
            ece = False

        source.sim.run(until=2e-3)  # RTT sample = 2 ms >= K
        suppressed = source._on_ack_pre_increase(1, FakeAck())
        ep = (2e-3 - 1e-3) / 2e-3
        assert suppressed
        assert source.cwnd == pytest.approx(40.0 * (1 - ep / 2))
        assert source.ssthresh == source.cwnd  # congestion ends slow start

    def test_no_decrease_below_k(self):
        sim, _star, source, _sink = trim_pair()
        source.send_message(5)
        sim.run(until=0.01)
        assert source.delay_decreases == 0

    def test_decrease_at_most_once_per_window(self):
        sim, star, source, _sink = trim_pair(frontend_bandwidth=100e6)
        source.send_message(3000)
        sim.run(until=0.05)
        # Many ACKs exceeded K, but decreases are bounded by windows:
        # far fewer decreases than ACKs received.
        assert 0 < source.delay_decreases < source.stats.acks_received / 5

    def test_queue_bounded_by_delay_control(self):
        sim, star, source, _sink = trim_pair(frontend_bandwidth=100e6)
        source.send_message(30000)
        peak = {"v": 0}

        def probe():
            peak["v"] = max(peak["v"], star.bottleneck.backlog_pkts)
            if sim.now < 0.4:
                sim.schedule(1e-4, probe)

        sim.schedule_at(0.05, probe)
        sim.run(until=0.4)
        assert peak["v"] < 40
        assert source.stats.timeouts == 0


class TestK:
    def test_static_k_with_capacity_and_base_rtt(self):
        _sim, _star, source, _sink = trim_pair(base_rtt=1e-3)
        expected = kguide.k_threshold(CAPACITY_PPS, 1e-3)
        assert source.k == pytest.approx(expected)

    def test_static_k_not_overwritten_by_samples(self):
        sim, _star, source, _sink = trim_pair(base_rtt=1e-3)
        k_before = source.k
        source.send_message(50)
        sim.run(until=0.01)
        assert source.k == k_before

    def test_dynamic_k_from_min_rtt(self):
        sim, _star, source, _sink = trim_pair()
        assert source.k is None
        source.send_message(10)
        sim.run(until=0.01)
        assert source.k == pytest.approx(
            kguide.k_threshold(CAPACITY_PPS, source.min_rtt)
        )

    def test_fallback_k_without_capacity(self):
        sim, _star, source, _sink = trim_pair(capacity_pps=None)
        source.send_message(10)
        sim.run(until=0.01)
        assert source.k == pytest.approx(
            TrimSource.FALLBACK_K_FACTOR * source.min_rtt
        )

    def test_base_rtt_seeds_min_rtt(self):
        _sim, _star, source, _sink = trim_pair(base_rtt=2e-3)
        assert source.min_rtt == 2e-3


class TestTimeoutInteraction:
    def test_rto_aborts_probe(self):
        sim, star, source, _sink = trim_pair()
        source.send_message(20)
        sim.run(until=0.01)
        install_loss(star.bottleneck, drop_seqs_once({20, 21}))
        sim.schedule_at(0.02, lambda: source.send_message(30))
        sim.run(until=1.0)
        assert not source.probing
        assert not source.suspended
        assert source.all_acked

    def test_losses_still_recovered_by_reno_machinery(self):
        sim, star, source, sink = trim_pair()
        install_loss(star.bottleneck, drop_seqs_once({5}))
        source.send_message(30)
        sim.run(until=1.0)
        assert sink.next_expected == 30
        assert source.stats.fast_retransmits == 1


class TestEndToEnd:
    def test_onoff_stream_without_timeouts(self):
        """An ON/OFF stream over a contended link completes cleanly."""
        sim, _star, source, sink = trim_pair(frontend_bandwidth=200e6)
        total = 0
        for i in range(10):
            size = 30 + 10 * (i % 3)
            total += size
            sim.schedule_at(0.01 + 0.01 * i, lambda n=size: source.send_message(n))
        sim.run(until=1.0)
        assert sink.next_expected == total
        assert source.stats.timeouts == 0

    def test_probe_counters_track_activity(self):
        sim, _star, source, _sink = trim_pair()
        source.send_message(20)
        sim.run(until=0.01)
        for i in range(3):
            sim.schedule_at(0.02 + 0.01 * i, lambda: source.send_message(20))
        sim.run(until=0.1)
        assert source.probes_completed == 3
        assert source.probes_timed_out == 0
