"""Structural tests: every experiment harness runs at tiny scale and
returns well-formed results."""

import pytest

from repro.experiments.concurrency import ConcurrencyParams, run_concurrency
from repro.experiments.fairness import FairnessParams, run_fairness
from repro.experiments.fattree import FatTreeParams, run_fattree
from repro.experiments.large_scale import LargeScaleParams, run_large_scale
from repro.experiments.motivation import MotivationParams, run_motivation
from repro.experiments.multihop import MultiHopParams, run_multihop
from repro.experiments.properties import (
    PropertiesParams,
    run_properties_case,
    run_queue_trace,
)
from repro.experiments.testbed import (
    ArctParams,
    WebServiceParams,
    run_arct_sweep,
    run_web_service,
)
from repro.experiments.workload_figs import characterize_workload


class TestMotivation:
    def test_returns_complete_result(self):
        params = MotivationParams.quick(
            "reno", n_servers=2, n_responses=20, lpt_bytes=100_000, deadline=1.5
        )
        result = run_motivation(params)
        assert result.protocol == "reno"
        assert len(result.cwnd_traces) == 2
        assert len(result.timeouts_per_connection) == 2
        assert len(result.lpt_completion_times) == 2
        assert len(result.inherited_cwnd) == 2
        assert result.response_act > 0
        assert len(result.queue_pkts) > 0
        assert len(result.throughput_bps) > 0


class TestConcurrency:
    def test_case_structure(self):
        params = ConcurrencyParams.quick("reno", n_lpts=1, deadline=2.0)
        case = run_concurrency(params, n_spts=3)
        assert case.n_spts == 3
        assert case.n_lpts == 1
        assert case.completed == 3
        assert case.min_ct <= case.act <= case.max_ct

    def test_rejects_zero_spts(self):
        with pytest.raises(ValueError):
            run_concurrency(ConcurrencyParams.quick("reno"), n_spts=0)


class TestProperties:
    def test_queue_trace_runs(self):
        params = PropertiesParams.quick("reno", end_time=0.3)
        trace = run_queue_trace(params, n_trains=2)
        assert len(trace) > 100

    def test_case_fields(self):
        params = PropertiesParams.quick("trim", end_time=0.3)
        case = run_properties_case(params, n_trains=2)
        assert case.n_trains == 2
        assert case.goodput_bps > 0
        assert 0 < case.utilization <= 1.05
        assert case.average_queue_pkts <= case.peak_queue_pkts

    def test_rejects_zero_trains(self):
        with pytest.raises(ValueError):
            run_properties_case(PropertiesParams.quick("reno"), n_trains=0)


class TestFairness:
    def test_result_structure(self):
        params = FairnessParams.quick("trim", n_flows=3)
        result = run_fairness(params)
        assert len(result.flow_series) == 3
        assert len(result.plateau_shares) == 3
        assert 0 < result.plateau_fairness <= 1.0


class TestMultiHop:
    def test_result_structure(self):
        params = MultiHopParams.quick("reno", group_size=2, end_time=0.4)
        result = run_multihop(params)
        for group in ("a", "b", "c"):
            assert len(getattr(result, f"group_{group}_bps")) == 2
            assert result.mean(group) > 0


class TestLargeScale:
    def test_single_run(self):
        params = LargeScaleParams.quick("reno", servers_per_switch=5, repeats=1)
        times, n_spts, _timeouts = run_large_scale(params, n_switches=2)
        assert n_spts == 2 * (5 - params.lpts_per_switch)
        assert len(times) == n_spts

    def test_exponential_distribution(self):
        params = LargeScaleParams.quick(
            "reno", servers_per_switch=5, repeats=1, distribution="exponential"
        )
        times, n_spts, _ = run_large_scale(params, n_switches=2)
        assert len(times) == n_spts

    def test_unknown_distribution_rejected(self):
        params = LargeScaleParams.quick(
            "reno", servers_per_switch=4, distribution="pareto"
        )
        with pytest.raises(ValueError):
            run_large_scale(params, n_switches=1)


class TestFatTree:
    def test_result_structure(self):
        params = FatTreeParams.quick("reno", k=2, total_bytes=50_000, n_small=3)
        result = run_fattree(params)
        assert result.n_servers == 2
        assert result.completed_servers == 2
        assert result.big_mean_completion <= result.big_max_completion
        assert result.mean_completion > 0.4  # includes the 0.4 s schedule


class TestTestbed:
    def test_arct_sweep(self):
        params = ArctParams.quick(
            "cubic", mean_sizes_bytes=(32768,), n_responses=5
        )
        cases = run_arct_sweep(params)
        assert len(cases) == 1
        assert cases[0].completed == 5
        assert cases[0].arct > 0

    def test_web_service(self):
        params = WebServiceParams.quick(
            "trim", n_servers=2, n_responses_per_server=20, deadline=5.0
        )
        result = run_web_service(params)
        assert len(result.all_times) == 40
        assert 0 <= result.fraction_under_threshold <= 1.0
        assert result.p99 >= 0


class TestWorkloadFigures:
    def test_characterize_roundtrip(self):
        wl = characterize_workload(seed=3, duration=2.0)
        assert len(wl.trains) > 100
        assert len(wl.gaps) == len(wl.trains) - 1
        assert sum(t.n_packets for t in wl.trains) == len(wl.packet_times)

    def test_fractions_near_anchors(self):
        wl = characterize_workload(seed=4, duration=20.0)
        assert wl.size_fraction_below(4096) == pytest.approx(0.20, abs=0.04)
        assert wl.size_fraction_below(131072) == pytest.approx(0.90, abs=0.04)
