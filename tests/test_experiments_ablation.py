"""Tests for the ablation experiment harnesses."""

import math

import pytest

from repro.experiments.ablation import (
    run_alpha_sweep,
    run_k_sweep,
    run_probe_policies,
)


class TestKSweep:
    @pytest.fixture(scope="class")
    def cases(self):
        return run_k_sweep(
            multipliers=(0.5, 1.0, 2.0), n_trains=3, duration=0.25
        )

    def test_case_per_multiplier(self, cases):
        assert [c.multiplier for c in cases] == [0.5, 1.0, 2.0]

    def test_queue_grows_with_k(self, cases):
        queues = [c.average_queue_pkts for c in cases]
        assert queues == sorted(queues)
        assert queues[-1] > queues[0]

    def test_guideline_k_fully_utilizes(self, cases):
        at_guideline = cases[1]
        assert at_guideline.utilization > 0.9
        assert at_guideline.dropped_packets == 0
        assert at_guideline.timeouts == 0

    def test_k_values_floor_at_base_rtt(self, cases):
        assert all(c.k > 0 for c in cases)
        assert cases[0].k <= cases[1].k <= cases[2].k


class TestProbePolicies:
    @pytest.fixture(scope="class")
    def cases(self):
        return {c.protocol: c for c in run_probe_policies(quick=True)}

    def test_all_policies_present(self, cases):
        assert set(cases) == {"reno", "gip", "trim"}

    def test_trim_is_loss_free(self, cases):
        assert cases["trim"].timeouts == 0
        assert cases["trim"].dropped_packets == 0

    def test_ordering_matches_design_story(self, cases):
        # Blind inheritance worst; restart-at-2 safer; probing best.
        assert cases["trim"].timeouts <= cases["gip"].timeouts
        assert cases["gip"].timeouts <= cases["reno"].timeouts
        assert (
            cases["trim"].mean_lpt_completion
            < cases["gip"].mean_lpt_completion
            < cases["reno"].mean_lpt_completion
        )


class TestAlphaSweep:
    @pytest.fixture(scope="class")
    def cases(self):
        return {c.alpha: c for c in run_alpha_sweep(alphas=(0.1, 0.25, 0.9))}

    def test_every_alpha_delivers_full_stream(self, cases):
        for case in cases.values():
            assert case.delivered_segments == 20 * 40
            assert not math.isnan(case.stream_finish_time)

    def test_paper_alpha_is_safe(self, cases):
        paper = cases[0.25]
        assert paper.probe_deadline_misses <= 2
        assert paper.stream_finish_time <= cases[0.9].stream_finish_time * 1.05

    def test_sluggish_alpha_shows_instability(self, cases):
        # α = 0.1 under-tracks the varying RTT: smooth_RTT (both the gap
        # threshold and the probe deadline) goes stale, probes are
        # condemned by out-of-date deadlines, and the stream slows.
        assert (
            cases[0.1].probe_deadline_misses
            > 5 * (cases[0.25].probe_deadline_misses + 1)
        )
        assert cases[0.1].stream_finish_time > cases[0.25].stream_finish_time

    def test_benign_path_is_alpha_insensitive(self):
        # Without RTT variability the gain barely matters — every α
        # completes the same stream at the same time.
        cases = run_alpha_sweep(alphas=(0.1, 0.25, 0.9), background=False)
        finishes = {round(c.stream_finish_time, 4) for c in cases}
        assert len(finishes) == 1
        assert all(c.probe_deadline_misses == 0 for c in cases)
