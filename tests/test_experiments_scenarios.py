"""Unit tests for the shared experiment plumbing."""

import pytest

from repro.core.trim import TrimSource
from repro.experiments.scenarios import (
    ConnectionSet,
    WARM_SSTHRESH,
    dctcp_threshold_pkts,
    ecn_threshold_for,
    packets_per_second,
    path_base_rtt,
    run_until,
    warm_config,
)
from repro.net.topology import build_star
from repro.sim.kernel import Simulator
from repro.tcp.base import TcpConfig


class TestConversions:
    def test_packets_per_second(self):
        assert packets_per_second(1e9) == pytest.approx(1e9 / (8 * 1460))

    def test_packets_per_second_validation(self):
        with pytest.raises(ValueError):
            packets_per_second(0.0)

    def test_dctcp_threshold_matches_paper_anchors(self):
        # The DCTCP paper's empirical K: 20 pkts at 1 Gbps, 65 at 10 Gbps.
        assert dctcp_threshold_pkts(1e9) == 20
        assert dctcp_threshold_pkts(10e9) == 65
        assert dctcp_threshold_pkts(1e7) == 5  # floor

    def test_dctcp_threshold_monotone(self):
        rates = (1e8, 1e9, 5e9, 10e9, 40e9)
        thresholds = [dctcp_threshold_pkts(r) for r in rates]
        assert thresholds == sorted(thresholds)

    def test_ecn_threshold_only_for_ecn_protocols(self):
        assert ecn_threshold_for("dctcp", 1e9) == 20
        assert ecn_threshold_for("l2dct", 1e9) == 20
        assert ecn_threshold_for("reno", 1e9) is None
        assert ecn_threshold_for("trim", 1e9) is None

    def test_path_base_rtt(self):
        rtt = path_base_rtt([(50e-6, 1e9), (50e-6, 1e9)])
        forward = 2 * (50e-6 + 1460 * 8 / 1e9)
        reverse = 2 * (50e-6 + 40 * 8 / 1e9)
        assert rtt == pytest.approx(forward + reverse)

    def test_path_base_rtt_needs_links(self):
        with pytest.raises(ValueError):
            path_base_rtt([])


class TestWarmConfig:
    def test_overrides_ssthresh_only(self):
        base = TcpConfig(min_rto=0.05)
        warm = warm_config(base)
        assert warm.initial_ssthresh == WARM_SSTHRESH
        assert warm.min_rto == 0.05
        assert base.initial_ssthresh != WARM_SSTHRESH  # original untouched


class TestConnectionSet:
    def _star(self):
        sim = Simulator()
        star = build_star(sim, 3)
        return sim, star

    def test_flow_ids_unique(self):
        sim, star = self._star()
        conns = ConnectionSet(sim, "reno")
        conns.connect_many(star.servers, star.frontend)
        ids = [s.flow_id for s in conns.sources]
        assert len(set(ids)) == 3

    def test_trim_gets_capacity_and_base_rtt(self):
        sim, star = self._star()
        conns = ConnectionSet(
            sim, "trim", capacity_pps=85616.0, base_rtt=2e-4
        )
        source, _sink = conns.connect(star.servers[0], star.frontend)
        assert isinstance(source, TrimSource)
        assert source.capacity_pps == 85616.0
        assert source.base_rtt == 2e-4
        assert source.k is not None

    def test_per_connection_config_override(self):
        sim, star = self._star()
        base = TcpConfig(min_rto=0.2)
        conns = ConnectionSet(sim, "reno", config=base)
        special = TcpConfig(min_rto=0.01)
        source, _ = conns.connect(star.servers[0], star.frontend, config=special)
        other, _ = conns.connect(star.servers[1], star.frontend)
        assert source.config.min_rto == 0.01
        assert other.config.min_rto == 0.2

    def test_timeout_aggregation(self):
        sim, star = self._star()
        conns = ConnectionSet(sim, "reno")
        conns.connect_many(star.servers, star.frontend)
        conns.sources[0].stats.timeouts = 2
        conns.sources[2].stats.timeouts = 1
        assert conns.total_timeouts == 3
        assert conns.timeouts_per_source == [2, 0, 1]


class TestRunUntil:
    def test_stops_when_predicate_true(self):
        sim = Simulator()
        flag = []
        sim.schedule(0.3, lambda: flag.append(1))
        assert run_until(sim, lambda: bool(flag), deadline=1.0, step=0.1)
        assert sim.now < 1.0

    def test_returns_false_at_deadline(self):
        sim = Simulator()
        assert not run_until(sim, lambda: False, deadline=0.5, step=0.1)
        assert sim.now == pytest.approx(0.5)

    def test_rejects_past_deadline(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            run_until(sim, lambda: True, deadline=0.5)


class TestRunUntilEarlyExit:
    """Regression: an empty event heap must not be busy-stepped."""

    def test_empty_heap_jumps_to_deadline(self):
        sim = Simulator()
        calls = []

        def predicate():
            calls.append(sim.now)
            return False

        assert not run_until(sim, predicate, deadline=10.0, step=0.05)
        assert sim.now == pytest.approx(10.0)
        # one check on entry, one after the jump — not one per `step`
        assert len(calls) == 2

    def test_heap_draining_mid_run_still_exits_early(self):
        sim = Simulator()
        flag = []
        sim.schedule(0.2, lambda: None)  # heap drains at 0.2

        assert not run_until(sim, lambda: bool(flag), deadline=50.0, step=0.05)
        assert sim.now == pytest.approx(50.0)

    def test_predicate_flipped_by_last_event_is_seen(self):
        sim = Simulator()
        flag = []
        sim.schedule(0.3, lambda: flag.append(1))
        assert run_until(sim, lambda: bool(flag), deadline=50.0, step=0.05)
        assert sim.now < 1.0
