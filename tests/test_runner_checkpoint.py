"""Crash-safety tests: the checkpoint journal, resume, graceful
interrupts, and the straggler-race determinism fix.

The headline guarantees under test:

* every completed point is durable (flush + fsync) the moment it lands,
  so a ``kill -9`` mid-sweep loses at most the in-flight point — proven
  here by actually SIGKILLing a subprocess mid-sweep and resuming;
* ``resume=True`` replays journalled points and executes only the
  remainder, with payloads identical to an uninterrupted run;
* when a timed-out straggler and its retry both complete, the
  earliest-submitted success wins deterministically and the extra
  result is counted in ``SweepStats.duplicate_results``;
* ``KeyboardInterrupt`` raises :class:`SweepInterrupted` carrying the
  partial payloads, with everything completed already on disk.
"""

import concurrent.futures
import dataclasses
import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.experiments import registry
from repro.experiments.base import Experiment, Point
from repro.runner import (
    LegacyExecutorBackend,
    ResultCache,
    SweepCheckpoint,
    SweepInterrupted,
    SweepRunner,
)
from repro.runner.checkpoint import digest_params
from repro.sim.randomness import derive_seed


@dataclasses.dataclass
class _ToyParams:
    protocol: str = "reno"
    scale: int = 2

    @classmethod
    def paper(cls, protocol="reno", **overrides):
        return cls(protocol=protocol, **overrides)

    @classmethod
    def quick(cls, protocol="reno", **overrides):
        return cls(protocol=protocol, **overrides)


class _ToyExperiment(Experiment):
    id = "toy-ckpt"
    title = "checkpoint test double"
    params_cls = _ToyParams

    def __init__(self):
        self.calls = 0

    def points(self, params):
        return [Point(f"p{i}", {"i": i}) for i in range(3)]

    def run_point(self, params, point, seed):
        self.calls += 1
        return {"i": point.kwargs["i"], "seed": seed, "f": 0.1 + 0.2}


class TestSweepCheckpoint:
    def test_record_load_round_trip_is_exact(self, tmp_path):
        ckpt = SweepCheckpoint(tmp_path / "journal.jsonl")
        value = {"goodput": 0.1 + 0.2, "tiny": 1e-300, "n": 7}
        ckpt.record("toy", "p0", 123, value)
        ckpt.close()
        loaded = SweepCheckpoint(tmp_path / "journal.jsonl").load()
        assert loaded == {("toy", "p0", 123, ""): value}

    def test_load_missing_file_is_empty(self, tmp_path):
        assert SweepCheckpoint(tmp_path / "nope.jsonl").load() == {}

    def test_torn_tail_is_skipped(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        ckpt = SweepCheckpoint(path)
        ckpt.record("toy", "p0", 1, "ok")
        ckpt.record("toy", "p1", 1, "also ok")
        ckpt.close()
        # Simulate a crash mid-write: chop the last line in half.
        text = path.read_text()
        path.write_text(text[: len(text) - 20])
        loaded = SweepCheckpoint(path).load()
        assert loaded == {("toy", "p0", 1, ""): "ok"}

    def test_garbage_lines_are_skipped(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        ckpt = SweepCheckpoint(path)
        ckpt.record("toy", "p0", 1, "ok")
        ckpt.close()
        with path.open("a") as fh:
            fh.write("not json at all\n")
            fh.write('{"experiment": "toy", "label": "p1"}\n')  # no result
            fh.write('{"experiment": "toy", "label": "p2", "seed": 1, '
                     '"result": "bm90IGEgcGlja2xl"}\n')  # not a pickle
        assert SweepCheckpoint(path).load() == {("toy", "p0", 1, ""): "ok"}

    def test_last_record_wins_for_repeated_key(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        ckpt = SweepCheckpoint(path)
        ckpt.record("toy", "p0", 1, "stale")
        ckpt.record("toy", "p0", 1, "fresh")
        ckpt.close()
        assert SweepCheckpoint(path).load() == {("toy", "p0", 1, ""): "fresh"}

    def test_reset_truncates(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        ckpt = SweepCheckpoint(path)
        ckpt.record("toy", "p0", 1, "old")
        ckpt.reset()
        assert SweepCheckpoint(path).load() == {}

    def test_context_manager_closes(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with SweepCheckpoint(path) as ckpt:
            ckpt.record("toy", "p0", 1, "ok")
        assert ckpt._fh is None
        assert SweepCheckpoint(path).load() == {("toy", "p0", 1, ""): "ok"}


class TestRunnerCheckpointing:
    def test_resume_requires_checkpoint(self):
        with pytest.raises(ValueError, match="resume"):
            SweepRunner(resume=True)

    def test_fresh_run_journals_every_point(self, tmp_path):
        ckpt = SweepCheckpoint(tmp_path / "j.jsonl")
        runner = SweepRunner(checkpoint=ckpt)
        runner.run(_ToyExperiment(), _ToyParams(), seed=5)
        assert ckpt.records_written == 3
        keys = set(ckpt.load())
        digest = digest_params(_ToyParams())
        assert keys == {
            ("toy-ckpt", f"p{i}", derive_seed(5, f"toy-ckpt/p{i}"), digest)
            for i in range(3)
        }

    def test_resume_replays_without_executing(self, tmp_path):
        path = tmp_path / "j.jsonl"
        first = SweepRunner(checkpoint=SweepCheckpoint(path))
        experiment = _ToyExperiment()
        payload = first.run(experiment, _ToyParams(), seed=5)

        resumed_exp = _ToyExperiment()
        second = SweepRunner(checkpoint=SweepCheckpoint(path), resume=True)
        again = second.run(resumed_exp, _ToyParams(), seed=5)
        assert again == payload
        assert resumed_exp.calls == 0
        assert second.last_stats.resumed == 3
        assert second.last_stats.executed == 0

    def test_partial_journal_executes_only_the_remainder(self, tmp_path):
        path = tmp_path / "j.jsonl"
        seed0 = derive_seed(5, "toy-ckpt/p0")
        with SweepCheckpoint(path) as ckpt:
            ckpt.record("toy-ckpt", "p0", seed0,
                        {"i": 0, "seed": seed0, "f": 0.1 + 0.2},
                        params_digest=digest_params(_ToyParams()))
        experiment = _ToyExperiment()
        runner = SweepRunner(checkpoint=SweepCheckpoint(path), resume=True)
        payload = runner.run(experiment, _ToyParams(), seed=5)
        assert experiment.calls == 2  # p1 and p2 only
        assert runner.last_stats.resumed == 1
        assert [r["i"] for r in payload] == [0, 1, 2]

    def test_journal_keyed_on_seed(self, tmp_path):
        """A journal recorded under another root seed resumes nothing."""
        path = tmp_path / "j.jsonl"
        SweepRunner(checkpoint=SweepCheckpoint(path)).run(
            _ToyExperiment(), _ToyParams(), seed=5
        )
        experiment = _ToyExperiment()
        runner = SweepRunner(checkpoint=SweepCheckpoint(path), resume=True)
        runner.run(experiment, _ToyParams(), seed=6)
        assert runner.last_stats.resumed == 0
        assert experiment.calls == 3

    def test_fresh_run_truncates_stale_journal(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with SweepCheckpoint(path) as stale:
            stale.record("toy-ckpt", "p0", 1, "poison")
        runner = SweepRunner(checkpoint=SweepCheckpoint(path))
        runner.run(_ToyExperiment(), _ToyParams(), seed=5)
        assert "poison" not in [
            v for v in SweepCheckpoint(path).load().values()
        ]

    def test_cache_hits_are_journalled_too(self, tmp_path):
        """--resume must not depend on the shared cache keeping entries."""
        cache = ResultCache(tmp_path / "cache")
        path = tmp_path / "j.jsonl"
        warm = SweepRunner(cache=cache)
        warm.run(_ToyExperiment(), _ToyParams(), seed=5)

        hitting = SweepRunner(cache=cache, checkpoint=SweepCheckpoint(path))
        payload = hitting.run(_ToyExperiment(), _ToyParams(), seed=5)
        assert hitting.last_stats.cache_hits == 3

        experiment = _ToyExperiment()
        resumed = SweepRunner(checkpoint=SweepCheckpoint(path), resume=True)
        again = resumed.run(experiment, _ToyParams(), seed=5)  # no cache
        assert again == payload
        assert experiment.calls == 0
        assert resumed.last_stats.resumed == 3

    def test_second_run_many_on_one_runner_appends(self, tmp_path):
        """An ``all``-style sequence shares one journal: only the first
        (non-resume) call truncates it."""
        path = tmp_path / "j.jsonl"
        runner = SweepRunner(checkpoint=SweepCheckpoint(path))

        class Other(_ToyExperiment):
            id = "toy-ckpt-b"

        runner.run(_ToyExperiment(), _ToyParams(), seed=5)
        runner.run(Other(), _ToyParams(), seed=5)
        experiments = {key[0] for key in SweepCheckpoint(path).load()}
        assert experiments == {"toy-ckpt", "toy-ckpt-b"}

    def test_protocol_variants_do_not_collide_in_the_journal(self, tmp_path):
        """Protocol variants of one figure share the experiment id, the
        point labels, AND the per-point seeds (matched draws are a
        feature), so the journal key must fold in the params digest —
        without it the later variant's records overwrite the earlier
        one's and a resume replays the wrong numbers."""

        class Variant(_ToyExperiment):
            def run_point(self, params, point, seed):
                self.calls += 1
                return {"i": point.kwargs["i"], "protocol": params.protocol}

        path = tmp_path / "j.jsonl"
        first = SweepRunner(checkpoint=SweepCheckpoint(path))
        payloads = first.run_many(
            [(Variant(), _ToyParams(protocol="reno")),
             (Variant(), _ToyParams(protocol="trim"))],
            seed=5,
        )
        assert len(SweepCheckpoint(path).load()) == 6  # no overwrites

        reno, trim = Variant(), Variant()
        second = SweepRunner(checkpoint=SweepCheckpoint(path), resume=True)
        again = second.run_many(
            [(reno, _ToyParams(protocol="reno")),
             (trim, _ToyParams(protocol="trim"))],
            seed=5,
        )
        assert second.last_stats.resumed == 6
        assert second.last_stats.executed == 0
        assert reno.calls == 0 and trim.calls == 0
        assert again == payloads
        assert [r["protocol"] for r in again[0]] == ["reno"] * 3
        assert [r["protocol"] for r in again[1]] == ["trim"] * 3


class _InterruptingExperiment(_ToyExperiment):
    id = "toy-intr"

    def run_point(self, params, point, seed):
        if point.kwargs["i"] == 2:
            raise KeyboardInterrupt
        return super().run_point(params, point, seed)


class TestGracefulInterrupt:
    def test_inline_interrupt_raises_sweep_interrupted(self, tmp_path):
        path = tmp_path / "j.jsonl"
        runner = SweepRunner(checkpoint=SweepCheckpoint(path))
        with pytest.raises(SweepInterrupted) as excinfo:
            runner.run(_InterruptingExperiment(), _ToyParams(), seed=5)
        interrupt = excinfo.value
        assert isinstance(interrupt, KeyboardInterrupt)
        assert interrupt.stats.interrupted
        assert interrupt.stats.executed == 2
        # The default reduce drops the hole, so partials come through.
        assert [r["i"] for r in interrupt.payloads[0]] == [0, 1]
        # Everything completed before Ctrl-C is already durable.
        assert len(SweepCheckpoint(path).load()) == 2

    def test_interrupted_journal_resumes_cleanly(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with pytest.raises(SweepInterrupted):
            SweepRunner(checkpoint=SweepCheckpoint(path)).run(
                _InterruptingExperiment(), _ToyParams(), seed=5
            )
        class Recovered(_ToyExperiment):  # same id/points, no interrupt
            id = "toy-intr"

        experiment = Recovered()
        runner = SweepRunner(checkpoint=SweepCheckpoint(path), resume=True)
        payload = runner.run(experiment, _ToyParams(), seed=5)
        assert runner.last_stats.resumed == 2
        assert experiment.calls == 1  # only the interrupted point
        baseline = SweepRunner().run(Recovered(), _ToyParams(), seed=5)
        assert payload == baseline

    def test_reduce_failure_on_partials_degrades_to_none(self):
        class StrictReduce(_InterruptingExperiment):
            id = "toy-intr-strict"

            def reduce(self, params, points, results):
                if any(r is None for r in results):
                    raise RuntimeError("holes")
                return results

        with pytest.raises(SweepInterrupted) as excinfo:
            SweepRunner().run(StrictReduce(), _ToyParams(), seed=5)
        assert excinfo.value.payloads == [None]


class _StragglerExperiment(Experiment):
    """First attempt blocks until its retry has finished; both succeed."""

    id = "toy-straggler"
    title = "straggler race double"
    params_cls = _ToyParams

    def __init__(self):
        self.lock = threading.Lock()
        self.calls = 0
        self.retry_submitted = threading.Event()

    def points(self, params):
        return [Point("p0", {"i": 0})]

    def run_point(self, params, point, seed):
        with self.lock:
            self.calls += 1
            attempt = self.calls
        if attempt == 1:
            # The straggler: outlive the timeout, then finish quickly
            # once the retry exists so both results are in play.
            assert self.retry_submitted.wait(timeout=30.0)
            return "attempt-1"
        self.retry_submitted.set()
        time.sleep(0.3)  # let the straggler finish first
        return "attempt-2"


class TestStragglerRace:
    @pytest.fixture
    def straggler(self):
        experiment = _StragglerExperiment()
        registry._ensure_loaded()
        registry._REGISTRY[experiment.id] = experiment
        yield experiment
        registry._REGISTRY.pop(experiment.id, None)

    def test_earliest_submission_wins_and_duplicate_is_counted(self, straggler):
        # Threads instead of processes so the experiment's in-memory
        # events synchronize attempts; jobs=2 with a second trivial
        # point forces the pool path.
        runner = SweepRunner(
            jobs=2,
            timeout=0.1,
            retries=1,
            backend=LegacyExecutorBackend(
                lambda n: concurrent.futures.ThreadPoolExecutor(n)
            ),
        )

        class TwoPoints(_StragglerExperiment):
            def points(self, params):
                return [Point("p0", {"i": 0}), Point("p1", {"i": 1})]

            def run_point(self, params, point, seed):
                if point.label == "p1":
                    return "easy"
                return _StragglerExperiment.run_point(self, params, point, seed)

        experiment = TwoPoints()
        registry._REGISTRY[experiment.id] = experiment
        payload = runner.run(experiment, _ToyParams(), seed=0)
        # Deterministic keep-first: the straggler was submitted first,
        # so its result wins even though the retry also succeeded.
        assert payload == ["attempt-1", "easy"]
        assert experiment.calls == 2
        stats = runner.last_stats
        assert stats.duplicate_results == 1
        assert stats.executed == 2
        assert stats.failures == []

    def test_pool_runs_are_deterministic_across_repeats(self, straggler):
        payloads = set()
        for _ in range(3):
            experiment = _StragglerExperiment()
            registry._REGISTRY[experiment.id] = experiment
            runner = SweepRunner(
                jobs=2,
                timeout=0.1,
                retries=1,
                backend=LegacyExecutorBackend(
                    lambda n: concurrent.futures.ThreadPoolExecutor(n)
                ),
            )

            class TwoPoints(type(experiment)):
                def points(self, params):
                    return [Point("p0", {"i": 0}), Point("p1", {"i": 1})]

                def run_point(self, params, point, seed):
                    if point.label == "p1":
                        return "easy"
                    return _StragglerExperiment.run_point(
                        self, params, point, seed
                    )

            experiment.__class__ = TwoPoints
            payloads.add(tuple(runner.run(experiment, _ToyParams(), seed=0)))
        assert payloads == {("attempt-1", "easy")}


_KILL_SCRIPT = """
import dataclasses, json, os, sys, time

from repro.experiments.base import Experiment, Point
from repro.runner import SweepCheckpoint, SweepRunner


@dataclasses.dataclass
class Params:
    protocol: str = "reno"


class Sleepy(Experiment):
    id = "toy-kill"
    title = "kill -9 target"
    params_cls = Params

    def points(self, params):
        return [Point(f"p{i}", {"i": i}) for i in range(3)]

    def run_point(self, params, point, seed):
        if point.kwargs["i"] >= 1 and os.environ.get("SLOW") == "1":
            time.sleep(60.0)  # parent SIGKILLs us here
        return {"i": point.kwargs["i"], "seed": seed, "f": 0.1 + 0.2}


runner = SweepRunner(
    checkpoint=SweepCheckpoint(sys.argv[1]),
    resume=os.environ.get("RESUME") == "1",
)
payload = runner.run(Sleepy(), Params(), seed=5)
print(json.dumps({
    "payload": payload,
    "resumed": runner.last_stats.resumed,
    "executed": runner.last_stats.executed,
}))
"""


class TestKillDashNine:
    def test_sigkill_mid_sweep_then_resume_matches_uninterrupted(
        self, tmp_path
    ):
        script = tmp_path / "sweep.py"
        script.write_text(_KILL_SCRIPT)
        journal = tmp_path / "journal.jsonl"
        env = dict(
            os.environ,
            PYTHONPATH=str(Path(__file__).resolve().parent.parent / "src"),
        )

        # Run 1: p0 completes and is journalled, p1 sleeps; SIGKILL it.
        proc = subprocess.Popen(
            [sys.executable, str(script), str(journal)],
            env={**env, "SLOW": "1"},
            stdout=subprocess.PIPE,
        )
        try:
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                # The journal opens with a backend header line; wait for
                # an actual point record before pulling the trigger.
                if journal.exists() and '"result"' in journal.read_text():
                    break
                time.sleep(0.05)
            else:
                pytest.fail("first point never reached the journal")
            os.kill(proc.pid, signal.SIGKILL)
        finally:
            proc.wait(timeout=30.0)
        assert proc.returncode == -signal.SIGKILL
        journalled = SweepCheckpoint(journal).load()
        assert [(key[0], key[1]) for key in journalled] == [("toy-kill", "p0")]
        assert len(journalled) == 1  # p1 died mid-run, p2 never started

        # Run 2: resume — only the unfinished points execute.
        resumed = subprocess.run(
            [sys.executable, str(script), str(journal)],
            env={**env, "SLOW": "0", "RESUME": "1"},
            stdout=subprocess.PIPE,
            check=True,
            timeout=60.0,
        )
        outcome = json.loads(resumed.stdout)
        assert outcome["resumed"] == 1
        assert outcome["executed"] == 2

        # Reference: an uninterrupted run with its own journal.
        fresh = subprocess.run(
            [sys.executable, str(script), str(tmp_path / "fresh.jsonl")],
            env={**env, "SLOW": "0"},
            stdout=subprocess.PIPE,
            check=True,
            timeout=60.0,
        )
        assert outcome["payload"] == json.loads(fresh.stdout)["payload"]
