"""Shared test fixtures: tiny networks with controllable loss."""

from __future__ import annotations

from typing import Callable, Optional

from repro.net.packet import Packet
from repro.net.queues import DropTailQueue
from repro.net.topology import build_star
from repro.sim.kernel import Simulator
from repro.tcp.base import TcpConfig, TcpSink, TcpSource
from repro.tcp.factory import create_source

FAST = dict(min_rto=0.01, initial_rto=0.01)
"""Millisecond-scale RTO so loss tests run in simulated milliseconds."""


def make_pair(
    protocol: str = "reno",
    n_servers: int = 1,
    bandwidth: float = 1e9,
    delay: float = 50e-6,
    buffer_pkts: int = 100,
    config: Optional[TcpConfig] = None,
    ecn_threshold: Optional[int] = None,
    frontend_bandwidth: Optional[float] = None,
    **source_kwargs,
):
    """One server, one front-end, one connection of ``protocol``.

    Pass ``frontend_bandwidth`` below ``bandwidth`` to make the switch
    egress the bottleneck (required when the queue under test must form
    at a marking-capable switch port rather than the host NIC).

    Returns (sim, star, source, sink).
    """
    sim = Simulator()
    star = build_star(
        sim,
        n_servers,
        bandwidth_bps=bandwidth,
        delay_s=delay,
        buffer_pkts=buffer_pkts,
        ecn_threshold_pkts=ecn_threshold,
        frontend_bandwidth_bps=frontend_bandwidth,
    )
    if config is None:
        config = TcpConfig(**FAST)
    source = create_source(
        protocol,
        sim,
        star.servers[0],
        star.frontend.node_id,
        flow_id=1,
        config=config,
        **source_kwargs,
    )
    sink = TcpSink(sim, star.frontend, flow_id=1)
    return sim, star, source, sink


def drop_seqs_once(seqs) -> Callable[[Packet], bool]:
    """Drop the first transmission of each data segment in ``seqs``."""
    pending = set(seqs)

    def should_drop(pkt: Packet) -> bool:
        if pkt.is_data and pkt.seq in pending and not pkt.is_retransmission:
            pending.discard(pkt.seq)
            return True
        return False

    return should_drop


def install_loss(link, should_drop) -> None:
    """Wrap ``link.send`` to silently discard selected packets.

    Intercepting at ``send`` (not the queue) catches packets that would
    bypass the queue straight into transmission on an idle link.
    """
    original = link.send

    def lossy_send(pkt: Packet) -> None:
        if should_drop(pkt):
            link.queue.stats.dropped += 1
            return
        original(pkt)

    link.send = lossy_send
