"""Unit and property tests for the K guideline (Eqs. 4–22)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core import kguide

# A 1 Gbps link in 1460 B packets, 200 µs base RTT: the paper's star.
C = 1e9 / (8 * 1460)
D = 200e-6

capacities = st.floats(min_value=1e3, max_value=1e7)
rtts = st.floats(min_value=1e-6, max_value=0.1)
flows = st.integers(min_value=1, max_value=500)


class TestFormulas:
    def test_k_threshold_star_scenario(self):
        k = kguide.k_threshold(C, D)
        expected = (math.sqrt(2 * C * D) - 1) ** 2 / C
        assert k == pytest.approx(max(expected, D))

    def test_k_threshold_small_cd_degenerates_to_d(self):
        # With tiny C·D the bound drops below D and K = D.
        assert kguide.k_threshold(1e3, 1e-6) == 1e-6

    def test_desired_queue(self):
        assert kguide.desired_queue_pkts(C, D + 1e-4, D) == pytest.approx(C * 1e-4)

    def test_desired_queue_rejects_k_below_d(self):
        with pytest.raises(ValueError):
            kguide.desired_queue_pkts(C, D / 2, D)

    def test_steady_window(self):
        assert kguide.steady_window_pkts(C, 3e-4, 5) == pytest.approx(C * 3e-4 / 5)

    def test_max_queue_adds_n(self):
        k = kguide.k_threshold(C, D)
        assert kguide.max_queue_pkts(C, k, D, 7) == pytest.approx(
            kguide.desired_queue_pkts(C, k, D) + 7
        )

    def test_congestion_level_eq2(self):
        assert kguide.congestion_level(2e-3, 1e-3) == pytest.approx(0.5)
        assert kguide.congestion_level(1e-3, 2e-3) == 0.0

    def test_congestion_level_validation(self):
        with pytest.raises(ValueError):
            kguide.congestion_level(0.0, 1e-3)
        with pytest.raises(ValueError):
            kguide.congestion_level(1e-3, -1.0)

    def test_total_window_decrement_eq10(self):
        k = 3e-4
        n = 4
        ck = C * k
        expected = (ck + n) / (2 * n) * sum(j / (ck + j) for j in range(1, n + 1))
        assert kguide.total_window_decrement(C, k, n) == pytest.approx(expected)

    def test_f_bound_eq17(self):
        n = 10
        assert kguide.f_bound(n, C, D) == pytest.approx(2 * n * D / (n + 1) - n / C)

    def test_stationary_point_eq19(self):
        assert kguide.f_stationary_point(C, D) == pytest.approx(
            math.sqrt(2 * C * D) - 1
        )

    def test_f_max_eq21(self):
        assert kguide.f_max(C, D) == pytest.approx(
            (math.sqrt(2 * C * D) - 1) ** 2 / C
        )

    def test_validation_of_cd(self):
        for fn in (kguide.k_threshold, kguide.f_max, kguide.f_stationary_point):
            with pytest.raises(ValueError):
                fn(0.0, D)
            with pytest.raises(ValueError):
                fn(C, 0.0)


class TestGuidelineProperties:
    @given(capacities, rtts)
    def test_k_at_least_d(self, c, d):
        assert kguide.k_threshold(c, d) >= d

    @given(capacities, rtts, flows)
    def test_k_dominates_f_bound_for_all_n(self, c, d, n):
        """Eq. 22's whole point: K ≥ F(N) for every flow count."""
        k = kguide.k_threshold(c, d)
        assert k >= kguide.f_bound(n, c, d) - 1e-12

    @given(capacities, rtts)
    def test_f_max_attained_at_stationary_point(self, c, d):
        n_star = kguide.f_stationary_point(c, d)
        if n_star <= 0:
            return  # F is maximized at the boundary; nothing to check
        peak = kguide.f_bound(n_star, c, d)
        assert peak == pytest.approx(kguide.f_max(c, d), rel=1e-9)
        for other in (n_star * 0.5, n_star * 2.0):
            assert kguide.f_bound(other, c, d) <= peak + 1e-12

    @given(capacities, rtts, st.integers(min_value=1, max_value=100))
    def test_utilization_holds_at_guideline_k(self, c, d, n):
        """Eq. 11 is satisfied when K follows Eq. 22 (plus epsilon)."""
        k = kguide.k_threshold(c, d) * 1.0001
        assert kguide.utilization_holds(c, k, d, n)

    @given(capacities, rtts)
    def test_congestion_level_bounded(self, c, d):
        k = kguide.k_threshold(c, d)
        for rtt in (k, k * 1.5, k * 10):
            ep = kguide.congestion_level(rtt, k)
            assert 0.0 <= ep < 1.0

    @given(capacities, rtts, flows)
    def test_decrement_positive(self, c, d, n):
        k = kguide.k_threshold(c, d)
        assert kguide.total_window_decrement(c, k, n) > 0
