"""Unit tests for drop-tail and ECN queues."""

import pytest
from hypothesis import given, strategies as st

from repro.net.packet import DATA, Packet
from repro.net.queues import DropTailQueue, EcnQueue


def pkt(ecn=False, seq=0):
    return Packet(flow_id=1, src=0, dst=1, kind=DATA, seq=seq, ecn_capable=ecn)


class TestDropTailQueue:
    def test_fifo_order(self):
        q = DropTailQueue(10)
        first, second = pkt(seq=1), pkt(seq=2)
        q.enqueue(first)
        q.enqueue(second)
        assert q.dequeue() is first
        assert q.dequeue() is second

    def test_dequeue_empty_returns_none(self):
        assert DropTailQueue(1).dequeue() is None

    def test_drops_when_full(self):
        q = DropTailQueue(2)
        assert q.enqueue(pkt())
        assert q.enqueue(pkt())
        assert not q.enqueue(pkt())
        assert q.stats.dropped == 1
        assert len(q) == 2

    def test_drop_callback(self):
        q = DropTailQueue(1)
        dropped = []
        q.on_drop = dropped.append
        q.enqueue(pkt(seq=1))
        victim = pkt(seq=2)
        q.enqueue(victim)
        assert dropped == [victim]

    def test_peak_length_tracked(self):
        q = DropTailQueue(5)
        for i in range(3):
            q.enqueue(pkt(seq=i))
        q.dequeue()
        assert q.stats.peak_length == 3

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            DropTailQueue(0)

    def test_counters(self):
        q = DropTailQueue(2)
        q.enqueue(pkt())
        q.enqueue(pkt())
        q.enqueue(pkt())  # dropped
        q.dequeue()
        assert q.stats.enqueued == 2
        assert q.stats.dequeued == 1
        assert q.stats.dropped == 1


class TestEcnQueue:
    def test_marks_at_threshold(self):
        q = EcnQueue(10, mark_threshold_pkts=2)
        a, b, c = pkt(ecn=True, seq=1), pkt(ecn=True, seq=2), pkt(ecn=True, seq=3)
        q.enqueue(a)
        q.enqueue(b)
        q.enqueue(c)  # queue already holds 2 >= threshold
        assert not a.ecn_ce
        assert not b.ecn_ce
        assert c.ecn_ce
        assert q.stats.marked == 1

    def test_non_ect_packets_never_marked(self):
        q = EcnQueue(10, mark_threshold_pkts=1)
        q.enqueue(pkt(ecn=False, seq=1))
        victim = pkt(ecn=False, seq=2)
        q.enqueue(victim)
        assert not victim.ecn_ce
        assert q.stats.marked == 0

    def test_still_drops_at_capacity(self):
        q = EcnQueue(2, mark_threshold_pkts=1)
        q.enqueue(pkt(ecn=True))
        q.enqueue(pkt(ecn=True))
        assert not q.enqueue(pkt(ecn=True))
        assert q.stats.dropped == 1

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            EcnQueue(10, mark_threshold_pkts=0)
        with pytest.raises(ValueError):
            EcnQueue(10, mark_threshold_pkts=11)

    def test_threshold_equal_capacity_allowed(self):
        EcnQueue(10, mark_threshold_pkts=10)

    def test_marking_stops_when_queue_drains(self):
        q = EcnQueue(10, mark_threshold_pkts=2)
        for i in range(3):
            q.enqueue(pkt(ecn=True, seq=i))
        q.dequeue()
        q.dequeue()
        fresh = pkt(ecn=True, seq=9)
        q.enqueue(fresh)  # length 1 < threshold
        assert not fresh.ecn_ce


@given(
    capacity=st.integers(min_value=1, max_value=20),
    ops=st.lists(st.sampled_from(["enq", "deq"]), max_size=200),
)
def test_property_packet_conservation(capacity, ops):
    """enqueued == dequeued + dropped + still-queued, and length bounded."""
    q = DropTailQueue(capacity)
    offered = dequeued = 0
    for op in ops:
        if op == "enq":
            q.enqueue(pkt(seq=offered))
            offered += 1
        elif q.dequeue() is not None:
            dequeued += 1
        assert len(q) <= capacity
    assert offered == dequeued + q.stats.dropped + len(q)
    assert q.stats.dequeued == dequeued
