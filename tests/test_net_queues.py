"""Unit tests for drop-tail and ECN queues."""

import pytest
from hypothesis import given, strategies as st

from repro.net.packet import DATA, Packet
from repro.net.queues import DropTailQueue, EcnQueue, FairQueue, RedQueue


def pkt(ecn=False, seq=0):
    return Packet(flow_id=1, src=0, dst=1, kind=DATA, seq=seq, ecn_capable=ecn)


class TestDropTailQueue:
    def test_fifo_order(self):
        q = DropTailQueue(10)
        first, second = pkt(seq=1), pkt(seq=2)
        q.enqueue(first)
        q.enqueue(second)
        assert q.dequeue() is first
        assert q.dequeue() is second

    def test_dequeue_empty_returns_none(self):
        assert DropTailQueue(1).dequeue() is None

    def test_drops_when_full(self):
        q = DropTailQueue(2)
        assert q.enqueue(pkt())
        assert q.enqueue(pkt())
        assert not q.enqueue(pkt())
        assert q.stats.dropped == 1
        assert len(q) == 2

    def test_drop_callback(self):
        q = DropTailQueue(1)
        dropped = []
        q.on_drop = dropped.append
        q.enqueue(pkt(seq=1))
        victim = pkt(seq=2)
        q.enqueue(victim)
        assert dropped == [victim]

    def test_peak_length_tracked(self):
        q = DropTailQueue(5)
        for i in range(3):
            q.enqueue(pkt(seq=i))
        q.dequeue()
        assert q.stats.peak_length == 3

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            DropTailQueue(0)

    def test_counters(self):
        q = DropTailQueue(2)
        q.enqueue(pkt())
        q.enqueue(pkt())
        q.enqueue(pkt())  # dropped
        q.dequeue()
        assert q.stats.enqueued == 2
        assert q.stats.dequeued == 1
        assert q.stats.dropped == 1


class TestEcnQueue:
    def test_marks_at_threshold(self):
        q = EcnQueue(10, mark_threshold_pkts=2)
        a, b, c = pkt(ecn=True, seq=1), pkt(ecn=True, seq=2), pkt(ecn=True, seq=3)
        q.enqueue(a)
        q.enqueue(b)
        q.enqueue(c)  # queue already holds 2 >= threshold
        assert not a.ecn_ce
        assert not b.ecn_ce
        assert c.ecn_ce
        assert q.stats.marked == 1

    def test_non_ect_packets_never_marked(self):
        q = EcnQueue(10, mark_threshold_pkts=1)
        q.enqueue(pkt(ecn=False, seq=1))
        victim = pkt(ecn=False, seq=2)
        q.enqueue(victim)
        assert not victim.ecn_ce
        assert q.stats.marked == 0

    def test_still_drops_at_capacity(self):
        q = EcnQueue(2, mark_threshold_pkts=1)
        q.enqueue(pkt(ecn=True))
        q.enqueue(pkt(ecn=True))
        assert not q.enqueue(pkt(ecn=True))
        assert q.stats.dropped == 1

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            EcnQueue(10, mark_threshold_pkts=0)
        with pytest.raises(ValueError):
            EcnQueue(10, mark_threshold_pkts=11)

    def test_threshold_equal_capacity_allowed(self):
        EcnQueue(10, mark_threshold_pkts=10)

    def test_marking_stops_when_queue_drains(self):
        q = EcnQueue(10, mark_threshold_pkts=2)
        for i in range(3):
            q.enqueue(pkt(ecn=True, seq=i))
        q.dequeue()
        q.dequeue()
        fresh = pkt(ecn=True, seq=9)
        q.enqueue(fresh)  # length 1 < threshold
        assert not fresh.ecn_ce


class TestResize:
    """Runtime capacity changes (fault injection's BufferResize)."""

    def test_shrink_evicts_newest_first(self):
        q = DropTailQueue(5)
        for i in range(5):
            q.enqueue(pkt(seq=i))
        evicted = q.resize(2)
        assert evicted == 3
        assert q.stats.evicted == 3
        assert q.capacity_pkts == 2
        # Survivors are the oldest arrivals, still in FIFO order.
        assert [q.dequeue().seq for _ in range(2)] == [0, 1]

    def test_evictions_reported_to_on_drop(self):
        q = DropTailQueue(3)
        victims = []
        q.on_drop = victims.append
        for i in range(3):
            q.enqueue(pkt(seq=i))
        q.resize(1)
        assert [p.seq for p in victims] == [2, 1]  # newest first

    def test_grow_never_touches_residents(self):
        q = DropTailQueue(2)
        q.enqueue(pkt(seq=0))
        q.enqueue(pkt(seq=1))
        assert q.resize(10) == 0
        assert q.stats.evicted == 0
        assert len(q) == 2
        assert q.enqueue(pkt(seq=2))  # the new headroom is usable

    def test_evictions_kept_apart_from_congestion_drops(self):
        q = DropTailQueue(2)
        q.enqueue(pkt(seq=0))
        q.enqueue(pkt(seq=1))
        q.enqueue(pkt(seq=2))  # congestion drop
        q.resize(1)  # eviction
        assert q.stats.dropped == 1
        assert q.stats.evicted == 1
        # Conservation holds with evictions accounted separately.
        assert q.stats.enqueued == q.stats.dequeued + q.stats.evicted + len(q)

    def test_resize_below_one_rejected(self):
        with pytest.raises(ValueError):
            DropTailQueue(4).resize(0)

    def test_ecn_resize_clamps_mark_threshold(self):
        q = EcnQueue(10, mark_threshold_pkts=8)
        q.resize(4)
        assert q.mark_threshold_pkts == 4
        q.resize(10)  # growing back does not move the clamped threshold
        assert q.mark_threshold_pkts == 4

    def test_red_resize_rescales_thresholds_preserving_ramp(self):
        q = RedQueue(20, min_threshold=5, max_threshold=15)
        q.resize(6)
        assert q.max_threshold == 6.0
        assert q.min_threshold == pytest.approx(2.0)  # 5 * (6/15)
        ratio = q.min_threshold / q.max_threshold
        assert ratio == pytest.approx(5 / 15)

    def test_red_resize_above_thresholds_leaves_them_alone(self):
        q = RedQueue(20, min_threshold=5, max_threshold=15)
        q.resize(30)
        assert q.min_threshold == 5
        assert q.max_threshold == 15


@given(
    capacity=st.integers(min_value=1, max_value=20),
    ops=st.lists(st.sampled_from(["enq", "deq"]), max_size=200),
)
def test_property_packet_conservation(capacity, ops):
    """enqueued == dequeued + dropped + still-queued, and length bounded."""
    q = DropTailQueue(capacity)
    offered = dequeued = 0
    for op in ops:
        if op == "enq":
            q.enqueue(pkt(seq=offered))
            offered += 1
        elif q.dequeue() is not None:
            dequeued += 1
        assert len(q) <= capacity
    assert offered == dequeued + q.stats.dropped + len(q)
    assert q.stats.dequeued == dequeued


@given(
    ops=st.lists(
        st.one_of(
            st.just(("enq", 0)),
            st.just(("deq", 0)),
            st.tuples(st.just("resize"), st.integers(min_value=1, max_value=20)),
        ),
        max_size=200,
    )
)
def test_property_conservation_with_resize(ops):
    """enqueued == dequeued + evicted + resident across arbitrary resizes."""
    q = DropTailQueue(10)
    seq = 0
    for op, arg in ops:
        if op == "enq":
            q.enqueue(pkt(seq=seq))
            seq += 1
        elif op == "deq":
            q.dequeue()
        else:
            q.resize(arg)
        assert len(q) <= q.capacity_pkts
        assert q.stats.enqueued == q.stats.dequeued + q.stats.evicted + len(q)


def fpkt(flow, seq=0, ecn=False):
    return Packet(flow_id=flow, src=0, dst=1, kind=DATA, seq=seq, ecn_capable=ecn)


class TestFairQueue:
    def test_round_robin_interleaves_flows(self):
        q = FairQueue(10)
        for seq in range(3):
            q.enqueue(fpkt(1, seq))
        for seq in range(3):
            q.enqueue(fpkt(2, seq))
        order = [(p.flow_id, p.seq) for p in (q.dequeue() for _ in range(6))]
        assert order == [(1, 0), (2, 0), (1, 1), (2, 1), (1, 2), (2, 2)]

    def test_per_flow_fifo_preserved(self):
        q = FairQueue(10)
        for seq in (5, 6, 7):
            q.enqueue(fpkt(1, seq))
        assert [q.dequeue().seq for _ in range(3)] == [5, 6, 7]

    def test_longest_queue_drop_charges_the_hog(self):
        q = FairQueue(4)
        for seq in range(3):
            q.enqueue(fpkt(1, seq))
        q.enqueue(fpkt(2, 0))
        # Buffer full; a newcomer flow's arrival evicts the hog's head.
        victims = []
        q.on_drop = victims.append
        assert q.enqueue(fpkt(3, 0))
        assert [(p.flow_id, p.seq) for p in victims] == [(1, 0)]
        assert q.backlog_of(1) == 2
        assert q.backlog_of(3) == 1
        assert len(q) == 4

    def test_hog_arrival_tail_drops_itself(self):
        q = FairQueue(3)
        for seq in range(2):
            q.enqueue(fpkt(1, seq))
        q.enqueue(fpkt(2, 0))
        assert not q.enqueue(fpkt(1, 2))  # flow 1 is the hog
        assert q.backlog_of(1) == 2
        assert q.stats.dropped == 1
        assert q.stats.evicted == 0  # arrival drop, not a resident drop

    def test_all_single_backlogs_tail_drops_arrival(self):
        q = FairQueue(2)
        q.enqueue(fpkt(1, 0))
        q.enqueue(fpkt(2, 0))
        assert not q.enqueue(fpkt(3, 0))
        assert len(q) == 2

    def test_fair_share_marks_over_share_flow_only(self):
        q = FairQueue(4)  # 2 active flows -> fair share 2
        q.enqueue(fpkt(1, 0, ecn=True))
        q.enqueue(fpkt(2, 0, ecn=True))
        assert q.stats.marked == 0
        over = fpkt(1, 1, ecn=True)
        q.enqueue(fpkt(1, 1, ecn=True))  # flow 1 reaches its share
        over = fpkt(1, 2, ecn=True)
        q.enqueue(over)  # ... and exceeds it
        assert over.ecn_ce
        assert q.stats.marked >= 1
        under = fpkt(2, 1, ecn=True)
        # flow 2 is at fair share now too (buffer shrank its share), so
        # only check that the *under-share* enqueue earlier stayed clean.
        assert not under.ecn_ce

    def test_non_ecn_flow_never_marked(self):
        q = FairQueue(2)
        for seq in range(2):
            p = fpkt(1, seq, ecn=False)
            q.enqueue(p)
            assert not p.ecn_ce
        assert q.stats.marked == 0

    def test_lqd_keeps_conservation_identity(self):
        q = FairQueue(3)
        for seq in range(3):
            q.enqueue(fpkt(1, seq))
        q.enqueue(fpkt(2, 0))  # LQD evicts flow 1's head
        q.dequeue()
        assert q.stats.enqueued == q.stats.dequeued + q.stats.evicted + len(q)

    def test_resize_reclaims_from_hogs(self):
        q = FairQueue(6)
        for seq in range(4):
            q.enqueue(fpkt(1, seq))
        q.enqueue(fpkt(2, 0))
        evicted = q.resize(2)
        assert evicted == 3
        assert q.capacity_pkts == 2
        assert len(q) == 2
        # The small flow survives; the hog is cut down.
        assert q.backlog_of(2) == 1
        assert q.stats.enqueued == q.stats.dequeued + q.stats.evicted + len(q)

    def test_dequeue_empty_returns_none(self):
        assert FairQueue(1).dequeue() is None

    def test_emptied_flow_leaves_round_robin(self):
        q = FairQueue(6)
        for seq in range(4):
            q.enqueue(fpkt(1, seq))
        q.enqueue(fpkt(2, 0))
        q.enqueue(fpkt(3, 0))
        # Shrinking to 2 reclaims every cell from the hog (flow 1 loses
        # all four: three as the longest backlog, the last on the
        # lowest-id tie-break), emptying it entirely.
        q.resize(2)
        assert q.backlog_of(1) == 0
        served = [q.dequeue().flow_id for _ in range(len(q))]
        # Flow 1 is gone; the survivors are served exactly once each.
        assert sorted(served) == [2, 3]
        assert q.dequeue() is None


@given(
    ops=st.lists(
        st.one_of(
            st.tuples(st.just("enq"), st.integers(min_value=1, max_value=4),
                      st.booleans()),
            st.tuples(st.just("deq"), st.just(0), st.just(False)),
            st.tuples(st.just("resize"),
                      st.integers(min_value=1, max_value=12), st.just(False)),
        ),
        max_size=300,
    )
)
def test_property_fair_queue_conserves_packets(ops):
    """enqueued == dequeued + evicted + resident under arbitrary
    multi-flow arrivals, services, LQD evictions, and resizes."""
    q = FairQueue(6)
    seq = 0
    admitted = dropped_arrivals = served = 0
    for op, arg, ecn in ops:
        if op == "enq":
            if q.enqueue(fpkt(arg, seq, ecn=ecn)):
                admitted += 1
            else:
                dropped_arrivals += 1
            seq += 1
        elif op == "deq":
            if q.dequeue() is not None:
                served += 1
        else:
            q.resize(arg)
        assert len(q) <= q.capacity_pkts
        assert len(q) == sum(q.backlog_of(f) for f in range(1, 5))
        assert q.stats.enqueued == q.stats.dequeued + q.stats.evicted + len(q)
    assert q.stats.enqueued == admitted
    assert q.stats.dequeued == served
    # Every offered packet is accounted: admitted ones are served,
    # still resident, or were evicted after admission.
    assert admitted == served + q.stats.evicted + len(q)
