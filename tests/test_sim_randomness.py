"""Unit tests for seeded random streams."""

from repro.sim.randomness import RandomStreams, _stable_hash


class TestRandomStreams:
    def test_same_name_returns_same_generator(self):
        streams = RandomStreams(7)
        assert streams.get("a") is streams.get("a")

    def test_different_names_give_independent_draws(self):
        streams = RandomStreams(7)
        a = streams.get("a").random(100)
        b = streams.get("b").random(100)
        assert list(a) != list(b)

    def test_reproducible_across_instances(self):
        one = RandomStreams(42).get("workload").random(10)
        two = RandomStreams(42).get("workload").random(10)
        assert list(one) == list(two)

    def test_different_seeds_differ(self):
        one = RandomStreams(1).get("x").random(10)
        two = RandomStreams(2).get("x").random(10)
        assert list(one) != list(two)

    def test_stream_independent_of_creation_order(self):
        forward = RandomStreams(5)
        forward.get("first")
        a1 = forward.get("second").random(5)
        backward = RandomStreams(5)
        a2 = backward.get("second").random(5)
        assert list(a1) == list(a2)


class TestStableHash:
    def test_deterministic(self):
        assert _stable_hash("abc") == _stable_hash("abc")

    def test_distinct_inputs_differ(self):
        assert _stable_hash("abc") != _stable_hash("abd")

    def test_fits_in_63_bits(self):
        for name in ("", "a", "long-name" * 50):
            assert 0 <= _stable_hash(name) < 2**63
