"""Unit tests for link serialization and delivery timing."""

import pytest

from repro.net.link import Link
from repro.net.node import Node
from repro.net.packet import DATA, Packet
from repro.net.queues import DropTailQueue, RedQueue
from repro.sim.kernel import Simulator


class RecordingNode(Node):
    """Endpoint that logs (time, packet) arrivals."""

    def __init__(self, sim, node_id):
        super().__init__(sim, node_id, f"n{node_id}")
        self.received = []

    def receive(self, pkt):
        self.received.append((self.sim.now, pkt))


def make_link(sim, bandwidth=8e6, delay=0.001, capacity=4):
    src = RecordingNode(sim, 0)
    dst = RecordingNode(sim, 1)
    link = Link(sim, src, dst, bandwidth, delay, DropTailQueue(capacity))
    src.attach_link(link)
    return src, dst, link


def pkt(size=1000, seq=0):
    return Packet(flow_id=1, src=0, dst=1, kind=DATA, seq=seq, size_bytes=size)


class TestLinkTiming:
    def test_delivery_time_is_tx_plus_propagation(self):
        sim = Simulator()
        _, dst, link = make_link(sim, bandwidth=8e6, delay=0.001)
        link.send(pkt(size=1000))  # 8000 bits / 8e6 bps = 1 ms tx
        sim.run()
        assert dst.received[0][0] == pytest.approx(0.002)

    def test_tx_time_helper(self):
        sim = Simulator()
        _, _, link = make_link(sim, bandwidth=1e6)
        assert link.tx_time(pkt(size=1250)) == pytest.approx(0.01)

    def test_back_to_back_packets_serialize(self):
        sim = Simulator()
        _, dst, link = make_link(sim, bandwidth=8e6, delay=0.0)
        link.send(pkt(size=1000, seq=0))
        link.send(pkt(size=1000, seq=1))
        sim.run()
        times = [t for t, _ in dst.received]
        assert times == pytest.approx([0.001, 0.002])

    def test_fifo_delivery_order(self):
        sim = Simulator()
        _, dst, link = make_link(sim)
        for i in range(3):
            link.send(pkt(seq=i))
        sim.run()
        assert [p.seq for _, p in dst.received] == [0, 1, 2]

    def test_busy_flag_and_backlog(self):
        sim = Simulator()
        _, _, link = make_link(sim, bandwidth=8e3)  # slow: 1s per packet
        link.send(pkt())
        link.send(pkt())
        assert link.busy
        assert link.backlog_pkts == 1

    def test_queue_overflow_drops(self):
        sim = Simulator()
        _, dst, link = make_link(sim, bandwidth=8e3, capacity=2)
        for i in range(5):  # 1 in service + 2 queued + 2 dropped
            link.send(pkt(seq=i))
        sim.run()
        assert len(dst.received) == 3
        assert link.queue.stats.dropped == 2

    def test_stats_accumulate(self):
        sim = Simulator()
        _, _, link = make_link(sim)
        link.send(pkt(size=500))
        link.send(pkt(size=700))
        sim.run()
        assert link.stats.tx_packets == 2
        assert link.stats.tx_bytes == 1200
        assert link.stats.busy_time == pytest.approx((500 + 700) * 8 / 8e6)

    def test_on_deliver_hook_and_hop_count(self):
        sim = Simulator()
        _, dst, link = make_link(sim)
        seen = []
        link.on_deliver = seen.append
        link.send(pkt())
        sim.run()
        assert len(seen) == 1
        assert seen[0].hops == 1

    def test_idle_after_drain(self):
        sim = Simulator()
        _, _, link = make_link(sim)
        link.send(pkt())
        sim.run()
        assert not link.busy
        assert link.backlog_pkts == 0

    def test_validation(self):
        sim = Simulator()
        src = RecordingNode(sim, 0)
        dst = RecordingNode(sim, 1)
        with pytest.raises(ValueError):
            Link(sim, src, dst, 0.0, 0.001, DropTailQueue(1))
        with pytest.raises(ValueError):
            Link(sim, src, dst, 1e6, -0.1, DropTailQueue(1))

    def test_attach_link_requires_matching_source(self):
        sim = Simulator()
        src = RecordingNode(sim, 0)
        dst = RecordingNode(sim, 1)
        link = Link(sim, src, dst, 1e6, 0.0, DropTailQueue(1))
        with pytest.raises(ValueError):
            dst.attach_link(link)


class TestDeliveryObservers:
    """Multi-observer dispatch on the delivery path."""

    def test_observers_run_in_registration_order(self):
        sim = Simulator()
        _, _, link = make_link(sim)
        order = []
        link.add_observer(lambda p: order.append("a"))
        link.add_observer(lambda p: order.append("b"))
        link.send(pkt())
        sim.run()
        assert order == ["a", "b"]

    def test_remove_middle_observer(self):
        sim = Simulator()
        _, _, link = make_link(sim)
        order = []
        hooks = [lambda p, i=i: order.append(i) for i in range(3)]
        for hook in hooks:
            link.add_observer(hook)
        link.remove_observer(hooks[1])
        link.send(pkt())
        sim.run()
        assert order == [0, 2]

    def test_remove_unknown_observer_is_lenient(self):
        sim = Simulator()
        _, _, link = make_link(sim)
        link.remove_observer(lambda p: None)  # never registered: no raise

    def test_clearing_legacy_hook_keeps_observers(self):
        sim = Simulator()
        _, _, link = make_link(sim)
        seen = []
        link.on_deliver = lambda p: seen.append("legacy")
        link.add_observer(lambda p: seen.append("observer"))
        link.on_deliver = None
        link.send(pkt())
        sim.run()
        assert seen == ["observer"]


class TestQueueSwap:
    """Mid-run egress-queue replacement (drop-tail → RED and back)."""

    def backlogged_link(self, capacity=8):
        # 8 kbps ⇒ 1 s per 1000-byte packet: the backlog stays resident.
        sim = Simulator()
        src, dst, link = make_link(sim, bandwidth=8e3, delay=0.0,
                                   capacity=capacity)
        for i in range(4):  # 1 in service + 3 queued
            link.send(pkt(seq=i))
        assert link.backlog_pkts == 3
        return sim, dst, link

    def test_tick_elision_flag_follows_queue_type(self):
        sim, _, link = self.backlogged_link()
        assert link._queue_ticks is False
        link.queue = RedQueue(8, min_threshold=2, max_threshold=4)
        assert link._queue_ticks is True
        link.queue = DropTailQueue(8)
        assert link._queue_ticks is False

    def test_swap_migrates_backlog_fifo_and_balances_stats(self):
        sim, dst, link = self.backlogged_link()
        old = link.queue
        red = RedQueue(8, min_threshold=2, max_threshold=4)
        link.queue = red
        # The three waiting packets moved over in FIFO order; the old
        # queue counts the handoff as dequeues, so both sides conserve.
        assert link.backlog_pkts == 3
        assert old.stats.enqueued == old.stats.dequeued == 3
        assert len(old) == 0
        assert red.stats.enqueued == 3
        sim.run()
        assert [p.seq for _, p in dst.received] == [0, 1, 2, 3]
        assert red.stats.enqueued == red.stats.dequeued + red.stats.evicted + len(red)

    def test_swap_applies_new_queue_admission_policy(self):
        sim, dst, link = self.backlogged_link()
        small = DropTailQueue(2)
        link.queue = small
        # The third migrated packet overflows the smaller queue.
        assert link.backlog_pkts == 2
        assert small.stats.dropped == 1
        sim.run()
        assert [p.seq for _, p in dst.received] == [0, 1, 2]

    def test_swap_to_same_queue_does_not_self_drain(self):
        sim, _, link = self.backlogged_link()
        q = link.queue
        link.queue = q
        assert link.backlog_pkts == 3
        assert q.stats.dequeued == 0

    def test_swap_registers_with_invariants_once(self):
        sim = Simulator(check_invariants=True)
        _, _, link = make_link(sim)
        registered = len(sim.invariants._queues)
        red = RedQueue(8, min_threshold=2, max_threshold=4)
        link.queue = red
        link.queue = red  # re-assignment must not double-register
        assert len(sim.invariants._queues) == registered + 1
        sim.invariants.check_all()  # migrated accounting stays balanced


class TestLinkUpDown:
    def test_set_down_loses_in_flight_packet(self):
        sim = Simulator()
        _, dst, link = make_link(sim, bandwidth=8e6, delay=0.01)
        link.send(pkt())  # tx done at 1 ms, delivery due at 11 ms
        sim.schedule_at(0.005, link.set_down)
        sim.run()
        assert dst.received == []
        assert not link.up

    def test_arrivals_while_down_queue_and_resume_on_up(self):
        sim = Simulator()
        _, dst, link = make_link(sim, bandwidth=8e6, delay=0.0)
        link.set_down()
        link.send(pkt(seq=0))
        link.send(pkt(seq=1))
        assert link.backlog_pkts == 2
        assert not link.busy
        sim.schedule_at(0.01, link.set_up)
        sim.run()
        assert [p.seq for _, p in dst.received] == [0, 1]
        times = [t for t, _ in dst.received]
        assert times == pytest.approx([0.011, 0.012])

    def test_set_up_when_already_up_is_noop(self):
        sim = Simulator()
        _, dst, link = make_link(sim)
        link.set_up()
        link.send(pkt())
        sim.run()
        assert len(dst.received) == 1

    def test_outage_mid_serialization_parks_transmitter(self):
        sim = Simulator()
        _, dst, link = make_link(sim, bandwidth=8e3, delay=0.0)  # 1 s/pkt
        link.send(pkt(seq=0))
        link.send(pkt(seq=1))
        sim.schedule_at(0.5, link.set_down)  # mid-serialization of seq 0
        sim.run(until=3.0)
        # seq 0 finished serializing but was lost in propagation; seq 1
        # stays parked in the queue until the link comes back.
        assert dst.received == []
        assert link.backlog_pkts == 1
        assert not link.busy
        link.set_up()
        sim.run(until=5.0)
        assert [p.seq for _, p in dst.received] == [1]
