"""Unit tests for link serialization and delivery timing."""

import pytest

from repro.net.link import Link
from repro.net.node import Node
from repro.net.packet import DATA, Packet
from repro.net.queues import DropTailQueue
from repro.sim.kernel import Simulator


class RecordingNode(Node):
    """Endpoint that logs (time, packet) arrivals."""

    def __init__(self, sim, node_id):
        super().__init__(sim, node_id, f"n{node_id}")
        self.received = []

    def receive(self, pkt):
        self.received.append((self.sim.now, pkt))


def make_link(sim, bandwidth=8e6, delay=0.001, capacity=4):
    src = RecordingNode(sim, 0)
    dst = RecordingNode(sim, 1)
    link = Link(sim, src, dst, bandwidth, delay, DropTailQueue(capacity))
    src.attach_link(link)
    return src, dst, link


def pkt(size=1000, seq=0):
    return Packet(flow_id=1, src=0, dst=1, kind=DATA, seq=seq, size_bytes=size)


class TestLinkTiming:
    def test_delivery_time_is_tx_plus_propagation(self):
        sim = Simulator()
        _, dst, link = make_link(sim, bandwidth=8e6, delay=0.001)
        link.send(pkt(size=1000))  # 8000 bits / 8e6 bps = 1 ms tx
        sim.run()
        assert dst.received[0][0] == pytest.approx(0.002)

    def test_tx_time_helper(self):
        sim = Simulator()
        _, _, link = make_link(sim, bandwidth=1e6)
        assert link.tx_time(pkt(size=1250)) == pytest.approx(0.01)

    def test_back_to_back_packets_serialize(self):
        sim = Simulator()
        _, dst, link = make_link(sim, bandwidth=8e6, delay=0.0)
        link.send(pkt(size=1000, seq=0))
        link.send(pkt(size=1000, seq=1))
        sim.run()
        times = [t for t, _ in dst.received]
        assert times == pytest.approx([0.001, 0.002])

    def test_fifo_delivery_order(self):
        sim = Simulator()
        _, dst, link = make_link(sim)
        for i in range(3):
            link.send(pkt(seq=i))
        sim.run()
        assert [p.seq for _, p in dst.received] == [0, 1, 2]

    def test_busy_flag_and_backlog(self):
        sim = Simulator()
        _, _, link = make_link(sim, bandwidth=8e3)  # slow: 1s per packet
        link.send(pkt())
        link.send(pkt())
        assert link.busy
        assert link.backlog_pkts == 1

    def test_queue_overflow_drops(self):
        sim = Simulator()
        _, dst, link = make_link(sim, bandwidth=8e3, capacity=2)
        for i in range(5):  # 1 in service + 2 queued + 2 dropped
            link.send(pkt(seq=i))
        sim.run()
        assert len(dst.received) == 3
        assert link.queue.stats.dropped == 2

    def test_stats_accumulate(self):
        sim = Simulator()
        _, _, link = make_link(sim)
        link.send(pkt(size=500))
        link.send(pkt(size=700))
        sim.run()
        assert link.stats.tx_packets == 2
        assert link.stats.tx_bytes == 1200
        assert link.stats.busy_time == pytest.approx((500 + 700) * 8 / 8e6)

    def test_on_deliver_hook_and_hop_count(self):
        sim = Simulator()
        _, dst, link = make_link(sim)
        seen = []
        link.on_deliver = seen.append
        link.send(pkt())
        sim.run()
        assert len(seen) == 1
        assert seen[0].hops == 1

    def test_idle_after_drain(self):
        sim = Simulator()
        _, _, link = make_link(sim)
        link.send(pkt())
        sim.run()
        assert not link.busy
        assert link.backlog_pkts == 0

    def test_validation(self):
        sim = Simulator()
        src = RecordingNode(sim, 0)
        dst = RecordingNode(sim, 1)
        with pytest.raises(ValueError):
            Link(sim, src, dst, 0.0, 0.001, DropTailQueue(1))
        with pytest.raises(ValueError):
            Link(sim, src, dst, 1e6, -0.1, DropTailQueue(1))

    def test_attach_link_requires_matching_source(self):
        sim = Simulator()
        src = RecordingNode(sim, 0)
        dst = RecordingNode(sim, 1)
        link = Link(sim, src, dst, 1e6, 0.0, DropTailQueue(1))
        with pytest.raises(ValueError):
            dst.attach_link(link)
