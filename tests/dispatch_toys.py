"""Toy experiments for dispatch-backend tests.

These live in their own importable module (not inside a test file)
because dispatch workers are *fresh processes*: they resolve
experiments by ``"module:attr"`` id and unpickle params defined here,
so everything must be importable from a worker whose ``PYTHONPATH``
the backend extended with this directory (``extra_sys_path``).

Each toy models one failure class the dispatcher must survive:

``ECHO``     deterministic success — equivalence and plumbing tests
``FLAKY``    fails exactly once per label (marker file), then succeeds
             — exercises the deterministic-retry-with-backoff path
             without tripping quarantine
``POISON``   always fails for selected labels with a stable message —
             the quarantine path (same signature, two workers)
``CRASSH``   hard-exits the worker process for selected labels — the
             transient path (worker death mid-task)
``STALL``    sleeps forever (in sweep terms) for selected labels on the
             first execution only — the speculation path
"""

import dataclasses
import os
import time

from repro.experiments.base import Experiment, Point


@dataclasses.dataclass
class ToyParams:
    n_points: int = 4
    state_dir: str = ""
    labels: tuple = ()
    sleep_s: float = 0.0

    @classmethod
    def paper(cls, **overrides):
        return cls(**overrides)

    @classmethod
    def quick(cls, **overrides):
        return cls(**overrides)


class _ToyBase(Experiment):
    title = "dispatch test toy"
    params_cls = ToyParams

    def points(self, params):
        return [Point(f"p{i}", {"i": i}) for i in range(params.n_points)]

    def reduce(self, params, points, results):
        return list(results)


class EchoExperiment(_ToyBase):
    id = "dispatch_toys:ECHO"

    def run_point(self, params, point, seed):
        return {"label": point.label, "seed": seed, "pid": None}


class FlakyExperiment(_ToyBase):
    """Fails once per label, then succeeds — cross-process via marker files."""

    id = "dispatch_toys:FLAKY"

    def run_point(self, params, point, seed):
        marker = os.path.join(params.state_dir, f"{point.label}.failed")
        if point.label in params.labels and not os.path.exists(marker):
            with open(marker, "w", encoding="utf-8") as handle:
                handle.write(str(os.getpid()))
            raise ValueError(f"flaky {point.label}")
        return {"label": point.label, "seed": seed}


class PoisonExperiment(_ToyBase):
    """Deterministically fails for selected labels, same message every time."""

    id = "dispatch_toys:POISON"

    def run_point(self, params, point, seed):
        if point.label in params.labels:
            raise ValueError(f"poison {point.label}")
        return {"label": point.label, "seed": seed}


class CrashExperiment(_ToyBase):
    """Kills the worker process outright for selected labels, once each."""

    id = "dispatch_toys:CRASH"

    def run_point(self, params, point, seed):
        marker = os.path.join(params.state_dir, f"{point.label}.crashed")
        if point.label in params.labels and not os.path.exists(marker):
            with open(marker, "w", encoding="utf-8") as handle:
                handle.write(str(os.getpid()))
            os._exit(17)
        return {"label": point.label, "seed": seed}


class StallExperiment(_ToyBase):
    """Sleeps ``sleep_s`` for selected labels on their first execution only.

    The second execution (the speculative duplicate) finds the marker
    and returns immediately — so a speculation test completes fast and
    both executions produce the identical deterministic value.
    """

    id = "dispatch_toys:STALL"

    def run_point(self, params, point, seed):
        marker = os.path.join(params.state_dir, f"{point.label}.stalled")
        if point.label in params.labels and not os.path.exists(marker):
            with open(marker, "w", encoding="utf-8") as handle:
                handle.write(str(os.getpid()))
            time.sleep(params.sleep_s)
        return {"label": point.label, "seed": seed}


ECHO = EchoExperiment()
FLAKY = FlakyExperiment()
POISON = PoisonExperiment()
CRASH = CrashExperiment()
STALL = StallExperiment()
