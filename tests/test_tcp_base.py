"""Unit and behavioural tests for the base TCP sender and sink."""

import math

import pytest

from repro.net.packet import MSS_BYTES
from repro.tcp.base import TcpConfig
from tests.helpers import FAST, drop_seqs_once, install_loss, make_pair


class TestDelivery:
    def test_single_message_delivers_and_completes(self):
        sim, _star, source, sink = make_pair()
        msg = source.send_message(50)
        sim.run(until=1.0)
        assert source.all_acked
        assert sink.next_expected == 50
        assert msg.finish_time is not None
        assert msg.completion_time > 0

    def test_completion_time_close_to_serialization(self):
        sim, _star, source, _sink = make_pair()
        msg = source.send_message(200)
        sim.run(until=1.0)
        line_time = 200 * MSS_BYTES * 8 / 1e9
        # Slow start ramps, so completion is more than line time but
        # within a small multiple of it plus a few RTTs.
        assert line_time < msg.completion_time < 5 * line_time + 0.01

    def test_send_bytes_rounds_up_segments(self):
        _sim, _star, source, _sink = make_pair()
        msg = source.send_bytes(MSS_BYTES + 1)
        assert msg.n_segments == 2

    def test_send_bytes_minimum_one_segment(self):
        _sim, _star, source, _sink = make_pair()
        assert source.send_bytes(1).n_segments == 1

    def test_multiple_messages_complete_in_order(self):
        sim, _star, source, _sink = make_pair()
        order = []
        for i in range(3):
            source.send_message(10, on_complete=lambda m, i=i: order.append(i))
        sim.run(until=1.0)
        assert order == [0, 1, 2]

    def test_message_validation(self):
        _sim, _star, source, _sink = make_pair()
        with pytest.raises(ValueError):
            source.send_message(0)
        with pytest.raises(ValueError):
            source.send_bytes(0)

    def test_on_complete_callback_receives_message(self):
        sim, _star, source, _sink = make_pair()
        seen = []
        msg = source.send_message(5, on_complete=seen.append)
        sim.run(until=1.0)
        assert seen == [msg]


class TestWindowGrowth:
    def test_slow_start_increments_per_ack(self):
        sim, _star, source, _sink = make_pair()
        source.send_message(20)
        sim.run(until=1.0)
        # 20 ACKs in slow start from initial 2.
        assert source.cwnd == pytest.approx(2.0 + 20)

    def test_congestion_avoidance_additive(self):
        config = TcpConfig(initial_ssthresh=2.0, **FAST)
        sim, _star, source, _sink = make_pair(config=config)
        source.send_message(10)
        sim.run(until=1.0)
        # Every ACK adds 1/cwnd; growth far below slow start.
        assert 2.0 < source.cwnd < 6.0

    def test_ack_counted_growth_when_app_limited(self):
        """The window inflates on every ACK even for tiny messages —
        the legacy behaviour behind the paper's inherited-window trap."""
        sim, _star, source, _sink = make_pair()
        for _ in range(30):
            source.send_message(2)
        sim.run(until=1.0)
        assert source.cwnd >= 60  # grew despite never being window-limited

    def test_max_cwnd_respected(self):
        config = TcpConfig(max_cwnd=4, **FAST)
        sim, _star, source, _sink = make_pair(config=config)
        source.send_message(100)
        sim.run(until=0.0201)
        assert source.flight <= 4

    def test_flight_never_negative(self):
        sim, _star, source, _sink = make_pair()
        source.send_message(30)
        sim.run(until=1.0)
        assert source.flight == 0


class TestFastRetransmit:
    def test_three_dupacks_trigger_retransmit(self):
        sim, star, source, sink = make_pair()
        install_loss(star.bottleneck, drop_seqs_once({5}))
        source.send_message(30)
        sim.run(until=1.0)
        assert source.stats.fast_retransmits == 1
        assert source.stats.timeouts == 0
        assert sink.next_expected == 30

    def test_window_halved_after_recovery(self):
        sim, star, source, _sink = make_pair()
        install_loss(star.bottleneck, drop_seqs_once({10}))
        source.send_message(40)
        sim.run(until=1.0)
        assert source.ssthresh < 40
        assert source.cwnd >= source.config.min_cwnd

    def test_recovery_exits_on_new_ack(self):
        sim, star, source, _sink = make_pair()
        install_loss(star.bottleneck, drop_seqs_once({5}))
        source.send_message(30)
        sim.run(until=1.0)
        assert not source.in_recovery

    def test_two_dupacks_do_not_retransmit(self):
        # Drop the 3rd-from-last segment: only 2 dupacks can arrive.
        sim, star, source, sink = make_pair()
        install_loss(star.bottleneck, drop_seqs_once({27}))
        source.send_message(30)
        sim.run(until=0.009)  # before the 10 ms RTO
        assert source.stats.fast_retransmits == 0
        sim.run(until=1.0)  # RTO eventually repairs it
        assert sink.next_expected == 30
        assert source.stats.timeouts >= 1


class TestTimeout:
    def test_whole_window_loss_forces_rto(self):
        sim, star, source, sink = make_pair()
        install_loss(star.bottleneck, drop_seqs_once({0, 1}))
        source.send_message(2)
        sim.run(until=1.0)
        assert source.stats.timeouts >= 1
        assert sink.next_expected == 2

    def test_timeout_resets_window_to_configured_value(self):
        sim, star, source, _sink = make_pair()
        install_loss(star.bottleneck, drop_seqs_once({0, 1}))
        source.send_message(2)
        # run just past the first RTO
        sim.run(until=0.0101)
        assert source.cwnd == source.config.cwnd_after_timeout

    def test_exponential_backoff_on_repeated_timeouts(self):
        sim, star, source, _sink = make_pair()
        # Drop seq 0 on its first three transmissions.
        attempts = {"n": 0}

        def should_drop(pkt):
            if pkt.is_data and pkt.seq == 0 and attempts["n"] < 3:
                attempts["n"] += 1
                return True
            return False

        install_loss(star.bottleneck, should_drop)
        source.send_message(1)
        sim.run(until=1.0)
        # Timeouts at ~10ms, +20ms, +40ms.
        assert source.stats.timeouts == 3
        assert source.all_acked

    def test_timer_idle_when_nothing_outstanding(self):
        sim, _star, source, _sink = make_pair()
        source.send_message(5)
        sim.run(until=1.0)
        assert source._rtx_event is None

    def test_go_back_n_after_timeout(self):
        sim, star, source, sink = make_pair()
        # Lose a mid-window run long enough that dupacks cannot reach 3.
        install_loss(star.bottleneck, drop_seqs_once({3, 4}))
        source.send_message(5)
        sim.run(until=1.0)
        assert sink.next_expected == 5
        assert source.all_acked


class TestKarn:
    def test_retransmitted_segment_gives_no_rtt_sample(self):
        sim, star, source, _sink = make_pair()
        install_loss(star.bottleneck, drop_seqs_once({0, 1}))
        samples = []
        source._on_rtt_sample = lambda rtt, pkt: samples.append(pkt.for_seq)
        source.send_message(2)
        sim.run(until=1.0)
        # Retransmissions of 0 and 1 are excluded by Karn's rule.
        assert 0 not in samples and 1 not in samples

    def test_clean_transfer_samples_every_segment(self):
        sim, _star, source, _sink = make_pair()
        samples = []
        source._on_rtt_sample = lambda rtt, pkt: samples.append(pkt.for_seq)
        source.send_message(10)
        sim.run(until=1.0)
        assert sorted(samples) == list(range(10))


class TestNewReno:
    def test_partial_ack_retransmits_next_hole(self):
        config = TcpConfig(recovery="newreno", **FAST)
        sim, star, source, sink = make_pair(config=config)
        install_loss(star.bottleneck, drop_seqs_once({5, 10}))
        source.send_message(30)
        sim.run(until=0.009)  # repaired within one RTO?
        assert sink.next_expected == 30
        assert source.stats.timeouts == 0

    def test_plain_reno_needs_rto_for_double_loss(self):
        sim, star, source, sink = make_pair()
        install_loss(star.bottleneck, drop_seqs_once({5, 10}))
        source.send_message(30)
        sim.run(until=1.0)
        assert sink.next_expected == 30
        assert source.stats.timeouts >= 1

    def test_invalid_recovery_name_rejected(self):
        with pytest.raises(ValueError):
            TcpConfig(recovery="vegas")


class TestStop:
    def test_stop_truncates_stream(self):
        sim, _star, source, _sink = make_pair()
        source.send_message(100000)
        sim.run(until=0.001)
        source.stop()
        limit = source.app_limit
        sim.run(until=1.0)
        assert source.app_limit == limit
        assert source.t_seqno <= limit
        assert source.flight == 0

    def test_stop_drops_unreachable_message_completions(self):
        sim, _star, source, _sink = make_pair()
        msg = source.send_message(100000)
        sim.run(until=0.001)
        source.stop()
        sim.run(until=1.0)
        assert msg.finish_time is None


class TestSink:
    def test_out_of_order_buffering(self):
        sim, star, source, sink = make_pair()
        install_loss(star.bottleneck, drop_seqs_once({2}))
        source.send_message(10)
        sim.run(until=1.0)
        assert sink.next_expected == 10
        assert sink.delivered_segments == 10

    def test_duplicate_detection(self):
        sim, star, source, sink = make_pair()
        # Force an RTO-based go-back-N: everything after the hole is
        # retransmitted, arriving as duplicates.
        install_loss(star.bottleneck, drop_seqs_once({0, 1}))
        source.send_message(2)
        sim.run(until=1.0)
        assert sink.delivered_segments == 2

    def test_acks_are_cumulative(self):
        sim, star, source, sink = make_pair()
        install_loss(star.bottleneck, drop_seqs_once({1}))
        source.send_message(5)
        sim.run(until=1.0)
        # Final cumulative state is complete despite the hole.
        assert source.highest_ack == 4

    def test_delivered_bytes(self):
        sim, _star, source, sink = make_pair()
        source.send_message(3)
        sim.run(until=1.0)
        assert sink.delivered_bytes == 3 * MSS_BYTES

    def test_sink_rejects_acks(self):
        from repro.net.packet import ACK, Packet

        _sim, _star, _source, sink = make_pair()
        with pytest.raises(RuntimeError):
            sink.receive_packet(Packet(flow_id=1, src=0, dst=1, kind=ACK, ack=0))

    def test_source_rejects_data(self):
        from repro.net.packet import DATA, Packet

        _sim, _star, source, _sink = make_pair()
        with pytest.raises(RuntimeError):
            source.receive_packet(Packet(flow_id=1, src=0, dst=1, kind=DATA, seq=0))


class TestConfig:
    def test_invalid_initial_cwnd(self):
        with pytest.raises(ValueError):
            TcpConfig(initial_cwnd=0.5)

    def test_defaults_match_paper(self):
        config = TcpConfig()
        assert config.mss_bytes == 1460
        assert config.min_cwnd == 2.0
        assert config.min_rto == 0.2
