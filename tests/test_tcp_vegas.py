"""Tests for the TCP Vegas baseline."""

import pytest

from repro.tcp.base import TcpConfig
from repro.tcp.factory import default_config
from tests.helpers import FAST, drop_seqs_once, install_loss, make_pair


def vegas_pair(**kwargs):
    config = kwargs.pop("config", default_config("vegas", **FAST))
    return make_pair("vegas", config=config, **kwargs)


class TestVegas:
    def test_registered_in_factory(self):
        from repro.tcp.factory import source_class
        from repro.tcp.vegas import VegasSource

        assert source_class("vegas") is VegasSource

    def test_completes_clean_transfer(self):
        sim, _star, source, sink = vegas_pair()
        source.send_message(400)
        sim.run(until=1.0)
        assert sink.next_expected == 400
        assert source.stats.timeouts == 0

    def test_base_rtt_tracks_minimum(self):
        sim, _star, source, _sink = vegas_pair()
        source.send_message(50)
        sim.run(until=1.0)
        assert source.base_rtt < 1e-3  # the star's queue-free RTT

    def test_holds_small_backlog_on_bottleneck(self):
        """Vegas parks ALPHA..BETA packets in the queue — never fills it."""
        sim, star, source, _sink = vegas_pair(frontend_bandwidth=200e6)
        source.send_message(30000)
        peak = {"v": 0}

        def probe():
            peak["v"] = max(peak["v"], star.bottleneck.backlog_pkts)
            if sim.now < 0.3:
                sim.schedule(1e-4, probe)

        sim.schedule_at(0.05, probe)
        sim.run(until=0.3)
        assert peak["v"] < 30
        assert source.stats.timeouts == 0

    def test_loss_recovery_still_reno(self):
        sim, star, source, sink = vegas_pair()
        install_loss(star.bottleneck, drop_seqs_once({10}))
        source.send_message(40)
        sim.run(until=1.0)
        assert sink.next_expected == 40
        assert source.stats.fast_retransmits == 1

    def test_no_probing_mechanism(self):
        """The ablation point: Vegas inherits windows blindly (it has no
        analogue of TRIM's Algorithm 1), so a long train after the ON/OFF
        phase still bursts a stale window into the path."""
        from repro.experiments.motivation import (
            MotivationParams,
            run_motivation,
        )

        vegas = run_motivation(MotivationParams.quick("vegas"))
        trim = run_motivation(MotivationParams.quick("trim"))
        assert max(vegas.inherited_cwnd) > 5 * max(trim.inherited_cwnd)
        assert vegas.dropped_packets > 0
        assert trim.dropped_packets == 0
