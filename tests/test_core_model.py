"""Tests for the steady-state fluid model (Section III.B)."""

import pytest

from repro.core import kguide
from repro.core.model import SteadyStateModel

C = 1e9 / (8 * 1460)
D = 200e-6


class TestValidation:
    def test_rejects_zero_flows(self):
        with pytest.raises(ValueError):
            SteadyStateModel(C, D, 0, kguide.k_threshold(C, D))

    def test_rejects_k_below_d(self):
        with pytest.raises(ValueError):
            SteadyStateModel(C, D, 5, D / 2)

    def test_rejects_zero_rounds(self):
        model = SteadyStateModel(C, D, 5, kguide.k_threshold(C, D))
        with pytest.raises(ValueError):
            model.run(0)


class TestSteadyState:
    def test_guideline_k_keeps_queue_positive(self):
        """The Eq. 22 K preserves 100% utilization: queue never hits 0."""
        for n in (2, 5, 10, 20):
            k = kguide.k_threshold(C, D) * 1.05
            trace = SteadyStateModel(C, D, n, k).run(100)
            assert trace.utilization_ok, f"underflow with N={n}"
            assert trace.min_queue > 0

    def test_queue_near_qmax_bound(self):
        """The dynamic model's peak stays close to the paper's one-round
        Q_max bound (the dynamics add a small reaction-delay overshoot
        the one-shot argument does not model)."""
        n = 10
        k = kguide.k_threshold(C, D) * 1.05
        trace = SteadyStateModel(C, D, n, k).run(100)
        bound = kguide.max_queue_pkts(C, k, D, n)
        assert trace.max_queue <= bound * 1.3

    def test_trace_lengths_match_rounds(self):
        trace = SteadyStateModel(C, D, 3, kguide.k_threshold(C, D)).run(25)
        assert len(trace.rounds) == 25
        assert len(trace.queue_pkts) == 25
        assert len(trace.total_window) == 25

    def test_pipe_pkts(self):
        k = kguide.k_threshold(C, D)
        model = SteadyStateModel(C, D, 4, k)
        assert model.pipe_pkts == pytest.approx(C * k)

    def test_window_oscillates_around_pipe(self):
        # Use a larger D so N·min_cwnd stays well below the C·K pipe.
        d = 1e-3
        k = kguide.k_threshold(C, d) * 1.05
        trace = SteadyStateModel(C, d, 5, k).run(200)
        mean_window = sum(trace.total_window) / len(trace.total_window)
        assert mean_window == pytest.approx(C * k, rel=0.25)
