"""Unit and property tests for packet-train extraction (Sec. II.A)."""

import pytest
from hypothesis import given, strategies as st

from repro.http.packet_train import (
    LPT_THRESHOLD_BYTES,
    PacketTrain,
    extract_trains,
    train_intervals,
)


class TestExtractTrains:
    def test_empty_log(self):
        assert extract_trains([], [], gap=1e-3) == []

    def test_single_packet_is_one_train(self):
        trains = extract_trains([1.0], [100], gap=1e-3)
        assert len(trains) == 1
        assert trains[0].n_packets == 1
        assert trains[0].total_bytes == 100
        assert trains[0].duration == 0.0

    def test_splits_at_gap(self):
        times = [0.0, 0.001, 0.010, 0.011]
        sizes = [100] * 4
        trains = extract_trains(times, sizes, gap=0.005)
        assert len(trains) == 2
        assert [t.n_packets for t in trains] == [2, 2]

    def test_gap_exactly_at_threshold_keeps_train(self):
        trains = extract_trains([0.0, 0.005], [1, 1], gap=0.005)
        assert len(trains) == 1  # interval must *exceed* the gap

    def test_train_boundaries(self):
        trains = extract_trains([0.0, 0.001, 0.1], [10, 20, 30], gap=0.01)
        assert trains[0].start_time == 0.0
        assert trains[0].end_time == 0.001
        assert trains[1].start_time == 0.1

    def test_non_monotonic_times_rejected(self):
        with pytest.raises(ValueError):
            extract_trains([1.0, 0.5], [1, 1], gap=0.01)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            extract_trains([1.0], [1, 2], gap=0.01)

    def test_non_positive_gap_rejected(self):
        with pytest.raises(ValueError):
            extract_trains([1.0], [1], gap=0.0)


class TestClassification:
    def test_lpt_threshold(self):
        small = PacketTrain(0.0, 1.0, 10, LPT_THRESHOLD_BYTES - 1)
        large = PacketTrain(0.0, 1.0, 100, LPT_THRESHOLD_BYTES)
        assert not small.is_long
        assert large.is_long


class TestConstructionValidation:
    def test_zero_packet_train_rejected(self):
        """Regression: an empty train used to construct silently and
        poison downstream statistics (mean sizes, train counts)."""
        with pytest.raises(ValueError):
            PacketTrain(0.0, 0.0, 0, 100)

    def test_negative_packet_count_rejected(self):
        with pytest.raises(ValueError):
            PacketTrain(0.0, 0.0, -1, 100)

    def test_zero_byte_train_rejected(self):
        with pytest.raises(ValueError):
            PacketTrain(0.0, 0.0, 1, 0)

    def test_inverted_time_span_rejected(self):
        with pytest.raises(ValueError):
            PacketTrain(1.0, 0.5, 1, 100)


class TestTrainIntervals:
    def test_intervals_between_trains(self):
        trains = [
            PacketTrain(0.0, 0.001, 2, 100),
            PacketTrain(0.01, 0.011, 2, 100),
            PacketTrain(0.05, 0.05, 1, 50),
        ]
        gaps = train_intervals(trains)
        assert gaps == pytest.approx([0.009, 0.039])

    def test_single_train_no_intervals(self):
        assert train_intervals([PacketTrain(0.0, 0.0, 1, 1)]) == []


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=1.0),
            st.integers(min_value=1, max_value=2000),
        ),
        min_size=1,
        max_size=100,
    ),
    st.floats(min_value=1e-4, max_value=0.5),
)
def test_property_conservation_and_structure(packets, gap):
    """Extraction preserves packet and byte totals; trains are ordered,
    non-overlapping, and internally gap-consistent."""
    packets.sort(key=lambda p: p[0])
    times = [t for t, _ in packets]
    sizes = [s for _, s in packets]
    trains = extract_trains(times, sizes, gap=gap)

    assert sum(t.n_packets for t in trains) == len(packets)
    assert sum(t.total_bytes for t in trains) == sum(sizes)
    for train in trains:
        assert train.end_time >= train.start_time
    for a, b in zip(trains, trains[1:]):
        assert b.start_time - a.end_time > gap
