"""Shared test fixtures."""

import pytest


@pytest.fixture(autouse=True)
def _isolated_sweep_cache(tmp_path, monkeypatch):
    """Point the sweep result cache at a per-test directory.

    CLI invocations in tests would otherwise share (and populate) the
    user-wide cache, making runs order-dependent and leaving files
    behind.  ``default_cache_dir`` reads the variable per call, so
    setting it here is enough.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "sweep-cache"))
