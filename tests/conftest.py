"""Shared test fixtures."""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--regen-golden",
        action="store_true",
        default=False,
        help="re-record the golden-trace fixtures under tests/golden/ "
        "instead of comparing against them (use only when a behavior "
        "change is intended and reviewed)",
    )


@pytest.fixture
def regen_golden(request):
    """True when the run should re-record golden-trace fixtures."""
    return bool(request.config.getoption("--regen-golden"))


@pytest.fixture(autouse=True)
def _isolated_sweep_cache(tmp_path, monkeypatch):
    """Point the sweep result cache at a per-test directory.

    CLI invocations in tests would otherwise share (and populate) the
    user-wide cache, making runs order-dependent and leaving files
    behind.  ``default_cache_dir`` reads the variable per call, so
    setting it here is enough.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "sweep-cache"))
