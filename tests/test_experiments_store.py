"""Tests for the results artifact store."""

import json
import math

import numpy as np
import pytest

from repro.experiments.concurrency import ConcurrencyCase
from repro.experiments.store import load_results, save_results, to_jsonable
from repro.sim.monitor import TimeSeries


class TestToJsonable:
    def test_scalars_pass_through(self):
        assert to_jsonable(3) == 3
        assert to_jsonable(2.5) == 2.5
        assert to_jsonable("x") == "x"
        assert to_jsonable(True) is True
        assert to_jsonable(None) is None

    def test_non_finite_floats_become_null(self):
        assert to_jsonable(float("nan")) is None
        assert to_jsonable(float("inf")) is None

    def test_numpy_types(self):
        assert to_jsonable(np.int64(7)) == 7
        assert to_jsonable(np.float64(1.5)) == 1.5
        assert to_jsonable(np.array([1.0, 2.0])) == [1.0, 2.0]

    def test_time_series(self):
        ts = TimeSeries("queue")
        ts.record(0.0, 1.0)
        out = to_jsonable(ts)
        assert out == {"name": "queue", "times": [0.0], "values": [1.0]}

    def test_dataclass(self):
        case = ConcurrencyCase(
            n_spts=3, n_lpts=1, act=0.1, min_ct=0.05, max_ct=0.2,
            completed=3, spt_timeouts=0, dropped_packets=4,
        )
        out = to_jsonable(case)
        assert out["n_spts"] == 3
        assert out["dropped_packets"] == 4

    def test_nested_containers(self):
        out = to_jsonable({"a": [(1, 2.0)], "b": {3}})
        assert out == {"a": [[1, 2.0]], "b": [3]}

    def test_result_is_json_dumpable(self):
        payload = {"series": TimeSeries(), "nan": float("nan")}
        json.dumps(to_jsonable(payload))


class TestSaveLoad:
    def test_roundtrip(self, tmp_path):
        path = save_results(
            tmp_path / "r.json", "fig9", {"x": 1.0}, preset="quick", seed=7
        )
        doc = load_results(path)
        assert doc["experiment"] == "fig9"
        assert doc["preset"] == "quick"
        assert doc["seed"] == 7
        assert doc["results"] == {"x": 1.0}
        assert doc["repro_version"]

    def test_load_rejects_foreign_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"hello": 1}))
        with pytest.raises(ValueError):
            load_results(path)


class TestCliOutput:
    def test_cli_writes_artifact(self, tmp_path, capsys):
        from repro.experiments import __main__ as cli

        out = tmp_path / "fig2.json"
        assert cli.main(["fig2", "--output", str(out)]) == 0
        doc = load_results(out)
        assert doc["experiment"] == "fig2"
        assert "fig2" in doc["results"]
