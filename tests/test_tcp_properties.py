"""Hypothesis property tests on the TCP sender/receiver pair.

Random ON/OFF schedules with random losses must always satisfy the
transport invariants: complete in-order delivery, sequence-number
monotonicity, and conservative accounting.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.tcp.base import TcpConfig
from tests.helpers import FAST, drop_seqs_once, install_loss, make_pair

trains = st.lists(
    st.tuples(
        st.floats(min_value=0.001, max_value=0.05),  # start offset
        st.integers(min_value=1, max_value=40),  # segments
    ),
    min_size=1,
    max_size=8,
)
loss_sets = st.sets(st.integers(min_value=0, max_value=100), max_size=10)


@settings(
    max_examples=20, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(schedule=trains, losses=loss_sets, sack=st.booleans())
def test_property_onoff_stream_invariants(schedule, losses, sack):
    config = TcpConfig(sack=sack, **FAST)
    sim, star, source, sink = make_pair("reno", config=config)
    install_loss(star.bottleneck, drop_seqs_once(losses))

    total = sum(n for _, n in schedule)
    for offset, segments in schedule:
        sim.schedule_at(offset, lambda n=segments: source.send_message(n))

    invariant_checks = []

    def check_invariants():
        invariant_checks.append(True)
        assert source.highest_ack < source.t_seqno or source.flight == 0
        assert source.t_seqno <= max(source.app_limit, source.max_seq_sent + 1)
        assert source.highest_ack + 1 <= source.app_limit
        # The sink can never expect beyond what was ever sent.  (Not
        # ``t_seqno``: go-back-N recovery pulls t_seqno back to
        # highest_ack + 1 while ACKs for later data are still in
        # flight, so next_expected > t_seqno is a legal transient.)
        assert sink.next_expected <= source.max_seq_sent + 1
        if sim.now < 2.0:
            sim.schedule(0.01, check_invariants)

    sim.schedule_at(0.0, check_invariants)
    sim.run(until=3.0)

    assert invariant_checks, "invariant probe never ran"
    assert sink.next_expected == total
    assert source.all_acked
    assert sink.delivered_segments == total
    # Message bookkeeping: every message finished, in order.
    finishes = [m.finish_time for m in source.messages]
    assert all(f is not None for f in finishes)
    assert finishes == sorted(finishes)


@settings(
    max_examples=15, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(losses=loss_sets)
def test_property_trim_stream_invariants(losses):
    """The same contract holds for TCP-TRIM with probing active."""
    sim, star, source, sink = make_pair(
        "trim", config=TcpConfig(**FAST), capacity_pps=85616.0
    )
    install_loss(star.bottleneck, drop_seqs_once(losses))
    for i in range(4):
        sim.schedule_at(0.01 * (i + 1), lambda: source.send_message(25))
    sim.run(until=3.0)
    assert sink.next_expected == 100
    assert source.all_acked
    assert not source.probing
    assert not source.suspended
