"""The chaos harness as a test: kill workers and the dispatcher itself.

These invoke the same scenarios CI's chaos job runs via
``python -m repro.runner.dispatch.chaos``, scaled down for the test
suite.  Scenario 1 SIGKILLs/SIGSTOPs *busy* workers mid-sweep and
demands a byte-identical payload versus the serial reference; scenario
2 SIGKILLs the whole dispatcher subprocess mid-sweep and resumes from
the checkpoint journal with no duplicate or missing points.

The reports carry their own vacuous-pass guards (the killer must land
its full schedule, kills must surface as transient retries, stops as
lease expirations), so asserting ``report["ok"]`` is a real claim.
"""

import pytest

from repro.runner.dispatch.chaos import (
    ChaosParams,
    chaos_dispatcher,
    chaos_workers,
)

pytestmark = pytest.mark.filterwarnings("ignore::ResourceWarning")


class TestChaosWorkers:
    def test_killed_and_stopped_workers_do_not_change_bytes(self):
        report = chaos_workers(
            seed=5,
            params=ChaosParams(n_points=16, sleep_s=0.2, payload_words=32),
            kills=2,
            stops=1,
            jobs=4,
            lease_timeout=1.5,
            verbose=False,
        )
        assert report["ok"], report
        assert report["byte_identical"]
        assert report["workers_killed"] == 2
        assert report["workers_stopped"] == 1
        assert report["transient_retries"] >= 1
        assert report["lease_expirations"] >= 1
        assert report["failures"] == 0


class TestChaosDispatcher:
    def test_dispatcher_kill_dash_nine_resumes_cleanly(self):
        report = chaos_dispatcher(
            seed=5,
            params=ChaosParams(n_points=12, sleep_s=0.15, payload_words=32),
            min_points_before_kill=3,
            verbose=False,
        )
        assert report["ok"], report
        assert report["byte_identical"]
        # No duplicate and no missing points across the kill boundary.
        assert report["journal_unique"] == 12
        assert report["journal_records"] == 12
        assert report["points_journalled_before_kill"] >= 3
        assert (
            report["points_resumed"] + report["points_executed_after_resume"]
            == 12
        )
