"""Behavior tests for Tiny Buffer TCP (paced, BDP-bounded sender)."""

import pytest

from repro.net.packet import ACK, Packet
from repro.tcp.base import TcpConfig
from repro.tcp.factory import default_config
from repro.tcp.tinybuffer import TinyBufferSource
from tests.helpers import FAST, drop_seqs_once, install_loss, make_pair


def pair(**kwargs):
    config = default_config("tinybuffer", **FAST)
    return make_pair("tinybuffer", config=config, **kwargs)


class TestDefaults:
    def test_factory_forces_pacing(self):
        assert default_config("tinybuffer").pacing is True

    def test_constructor_forces_pacing_even_when_config_disables_it(self):
        sim, star, source, sink = make_pair(
            "tinybuffer", config=TcpConfig(pacing=False, **FAST)
        )
        assert source.config.pacing is True

    def test_factory_marks_ect(self):
        assert default_config("tinybuffer").ecn_capable is True


class TestWindowClamp:
    def test_cwnd_clamps_near_bdp(self):
        sim, star, source, sink = pair(
            bandwidth=100e6, delay=200e-6, buffer_pkts=64
        )
        source.send_message(400)
        sim.run(until=1.0)
        assert sink.delivered_segments == 400
        target = source.target_cwnd()
        assert target is not None
        # The clamp engaged: the window sits at the BDP-plus-headroom
        # target instead of inflating toward the 64-packet buffer.
        assert source.cwnd == pytest.approx(target)
        # BDP here is ~2.2 segments + 2 headroom; far below the buffer.
        assert target < 16

    def test_min_rtt_tracks_running_minimum(self):
        sim, star, source, sink = pair()
        source.send_message(50)
        sim.run(until=0.5)
        assert source.min_rtt < float("inf")
        # min_rtt can never exceed the smoothed estimate's neighborhood.
        assert source.min_rtt <= source.rtt.srtt + 1e-9

    def test_no_estimate_before_first_ack(self):
        sim, star, source, sink = pair()
        assert source.target_cwnd() is None


class TestLossAndEcn:
    def test_single_loss_repaired_without_timeout(self):
        sim, star, source, sink = pair()
        install_loss(star.servers[0].nic, drop_seqs_once([7]))
        source.send_message(40)
        sim.run(until=1.0)
        assert sink.delivered_segments == 40
        assert source.stats.retransmits >= 1
        assert source.stats.timeouts == 0

    def test_loss_returns_window_to_target_not_below(self):
        sim, star, source, sink = pair(
            bandwidth=100e6, delay=200e-6, buffer_pkts=64
        )
        source.send_message(200)
        sim.run(until=0.3)
        target = source.target_cwnd()
        assert target is not None
        new_ssthresh = source._halve_window_on_loss()
        # With the window already at/below target, a loss event lands
        # at min(flight/2, target) floored at min_cwnd — never a deep
        # multiplicative undershoot below the configured floor.
        assert new_ssthresh >= source.config.min_cwnd
        assert new_ssthresh <= max(target, source.config.min_cwnd)

    def test_ece_feedback_sheds_one_segment(self):
        sim, star, source, sink = pair()
        source.send_message(60)
        sim.run(until=0.2)
        cwnd_before = source.cwnd
        ack = Packet(
            flow_id=1,
            src=star.frontend.node_id,
            dst=star.servers[0].node_id,
            kind=ACK,
            seq=source.highest_ack,  # duplicate ACK: no window increase
        )
        ack.ece = True
        suppressed = source._on_ack_pre_increase(0, ack)
        assert suppressed is True
        assert source.cwnd == pytest.approx(
            max(source.config.min_cwnd, cwnd_before - 1.0)
        )


class TestBurst:
    def test_burst_loss_recovers_cleanly(self):
        sim, star, source, sink = pair()
        install_loss(star.servers[0].nic, drop_seqs_once([10, 11, 12, 13, 14]))
        source.send_message(80)
        sim.run(until=1.5)
        assert sink.delivered_segments == 80
        assert source.stats.retransmits >= 5
