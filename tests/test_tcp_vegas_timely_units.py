"""Additional unit coverage for the delay-based baselines' internals."""

import pytest

from repro.tcp.factory import default_config
from repro.tcp.timely import TimelySource
from repro.tcp.vegas import VegasSource
from tests.helpers import FAST, make_pair


class TestVegasInternals:
    def test_diff_packets_zero_before_samples(self):
        _sim, _star, source, _sink = make_pair(
            "vegas", config=default_config("vegas", **FAST)
        )
        assert source.diff_packets == 0.0

    def test_diff_packets_formula(self):
        _sim, _star, source, _sink = make_pair(
            "vegas", config=default_config("vegas", **FAST)
        )
        source.base_rtt = 1e-3
        source._epoch_min_rtt = 2e-3
        source.cwnd = 10.0
        # diff = cwnd · (1 − base/rtt) = 10 · 0.5
        assert source.diff_packets == pytest.approx(5.0)

    def test_slow_start_doubles_every_other_epoch(self):
        _sim, _star, source, _sink = make_pair(
            "vegas", config=default_config("vegas", **FAST)
        )
        source.base_rtt = 1e-3
        source.cwnd = 4.0
        source.ssthresh = 1e12
        source._epoch_end = 0
        source.t_seqno = 10

        class Ack:
            ack = 5

        source._epoch_min_rtt = 1e-3  # diff 0: stay in slow start
        assert source._ss_grow_this_epoch
        source._increase_window(1, Ack())
        assert source.cwnd == pytest.approx(8.0)
        # Next epoch is the hold phase.
        source._epoch_min_rtt = 1e-3
        Ack.ack = 11
        source._increase_window(1, Ack())
        assert source.cwnd == pytest.approx(8.0)

    def test_gamma_exit_from_slow_start(self):
        _sim, _star, source, _sink = make_pair(
            "vegas", config=default_config("vegas", **FAST)
        )
        source.base_rtt = 1e-3
        source.cwnd = 16.0
        source.ssthresh = 1e12
        source._epoch_end = 0
        source.t_seqno = 10
        source._epoch_min_rtt = 1.2e-3  # diff = 16·(1−1/1.2) ≈ 2.7 > GAMMA

        class Ack:
            ack = 5

        source._increase_window(1, Ack())
        assert source.ssthresh == pytest.approx(16.0)
        assert source.cwnd == pytest.approx(15.0)

    def test_ca_holds_inside_band(self):
        _sim, _star, source, _sink = make_pair(
            "vegas", config=default_config("vegas", **FAST)
        )
        source.base_rtt = 1e-3
        source.cwnd = 10.0
        source.ssthresh = 5.0  # congestion avoidance
        source._epoch_end = 0
        source.t_seqno = 10
        # diff = 10·(1−1/1.25) = 2: between ALPHA=1 and BETA=3 → hold.
        source._epoch_min_rtt = 1.25e-3

        class Ack:
            ack = 5

        source._increase_window(1, Ack())
        assert source.cwnd == pytest.approx(10.0)


class TestTimelyInternals:
    def test_gradient_zero_without_history(self):
        _sim, _star, source, _sink = make_pair(
            "timely", config=default_config("timely", **FAST)
        )
        assert source.normalized_gradient() == 0.0

    def test_gradient_sign_tracks_rtt_trend(self):
        _sim, _star, source, _sink = make_pair(
            "timely", config=default_config("timely", **FAST)
        )

        class Pkt:
            pass

        rising = [1e-3, 1.2e-3, 1.4e-3, 1.6e-3]
        for rtt in rising:
            source._on_rtt_sample(rtt, Pkt())
        assert source.normalized_gradient() > 0

    def test_falling_rtt_gives_nonpositive_gradient(self):
        _sim, _star, source, _sink = make_pair(
            "timely", config=default_config("timely", **FAST)
        )

        class Pkt:
            pass

        for rtt in (2e-3, 1.8e-3, 1.6e-3, 1.4e-3, 1.2e-3, 1e-3, 1e-3, 1e-3):
            source._on_rtt_sample(rtt, Pkt())
        assert source.normalized_gradient() <= 0.2
