"""Tests for the terminal chart helpers."""

import pytest

from repro.metrics.ascii import cdf_table, sparkline, strip_chart
from repro.sim.monitor import TimeSeries


class TestSparkline:
    def test_empty(self):
        assert sparkline([]) == ""

    def test_width(self):
        assert len(sparkline(range(100), width=40)) == 40

    def test_constant_series_visible(self):
        line = sparkline([5.0] * 10, width=10)
        assert set(line) == {"▁"}

    def test_monotone_ramp_is_nondecreasing(self):
        line = sparkline(range(60), width=12)
        levels = [ord(c) for c in line]
        assert levels == sorted(levels)

    def test_short_input_padded_across_width(self):
        assert len(sparkline([1.0, 2.0], width=10)) == 10

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            sparkline([1.0], width=0)


class TestStripChart:
    def _series(self, values, t0=0.0, dt=0.1):
        s = TimeSeries()
        for i, v in enumerate(values):
            s.record(t0 + i * dt, v)
        return s

    def test_rows_and_format(self):
        s = self._series([10.0] * 50)
        rows = strip_chart([s], peak=20.0, rows=5, width=20)
        assert len(rows) == 5
        assert all(row.endswith("|") for row in rows)

    def test_flow_position_scales_with_value(self):
        low = self._series([1.0] * 50)
        high = self._series([19.0] * 50)
        rows = strip_chart([low, high], peak=20.0, rows=2, width=40)
        body = rows[0].split("|")[1]
        assert body.index("1") < body.index("2")

    def test_empty_series(self):
        assert strip_chart([TimeSeries()], peak=1.0) == []

    def test_validation(self):
        s = self._series([1.0, 2.0])
        with pytest.raises(ValueError):
            strip_chart([s], peak=0.0)
        with pytest.raises(ValueError):
            strip_chart([s], peak=1.0, rows=0)


class TestCdfTable:
    def test_quantile_rows(self):
        rows = cdf_table([0.001, 0.002, 0.003, 0.100])
        assert len(rows) == 5
        assert rows[-1].startswith("p100.0")
        assert "ms" in rows[0]

    def test_maximum_is_last_quantile(self):
        rows = cdf_table([0.5, 1.0], quantiles=(1.0,), scale=1.0, unit="s")
        assert "1.000 s" in rows[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            cdf_table([])
        with pytest.raises(ValueError):
            cdf_table([1.0], quantiles=(1.5,))
