"""repro.obs: trace spec grammar, telemetry bus, export, timelines.

The flight recorder's contracts, unit by unit: strict ``--trace``
parsing, channel/flow/link filtering and 1-in-N decimation on the bus,
bounded rings with counted overflow, deterministic JSONL/CSV export
(canonical-form validation included), the step-function timeline views,
and the ``REPRO_TRACE`` environment auto-attach that carries tracing
across the sweep-pool boundary.
"""

from __future__ import annotations

import pytest

from repro.net.packet import Packet
from repro.net.queues import DropTailQueue, EcnQueue
from repro.obs import (
    CHANNELS,
    CwndTimeline,
    QueueTimeline,
    Telemetry,
    TraceSpec,
    check_jsonl,
    dump_row,
    load_jsonl,
    validate_row,
    write_csv,
    write_jsonl,
)
from repro.obs import capture
from repro.sim.kernel import Simulator
from tests.helpers import make_pair


@pytest.fixture(autouse=True)
def clean_capture(monkeypatch):
    """Isolate every test from ambient tracing env and active buses."""
    monkeypatch.delenv(capture.ENV_SPEC, raising=False)
    monkeypatch.delenv(capture.ENV_OUT, raising=False)
    capture.discard_active()
    yield
    capture.discard_active()


class TestTraceSpec:
    def test_all_enables_every_channel(self):
        spec = TraceSpec.parse("all")
        assert spec.channels == frozenset(CHANNELS)
        assert spec.to_string() == "all"
        assert spec.wants_flow(123) and spec.wants_link("anything")

    def test_channel_list_with_decimation(self):
        spec = TraceSpec.parse("cwnd@8,queue,probe")
        assert spec.channels == frozenset({"cwnd", "queue", "probe"})
        assert spec.decimation_for("cwnd") == 8
        assert spec.decimation_for("queue") == 1
        assert not spec.wants_channel("rtt")

    def test_filter_only_spec_enables_everything(self):
        spec = TraceSpec.parse("flow=0,flow=2")
        assert spec.channels == frozenset(CHANNELS)
        assert spec.wants_flow(0) and spec.wants_flow(2)
        assert not spec.wants_flow(1)

    def test_link_globs(self):
        spec = TraceSpec.parse("queue,link=*->frontend")
        assert spec.wants_link("sw->frontend")
        assert not spec.wants_link("server0->sw")

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            " , ",
            "cwmd",                # unknown channel
            "cwnd@x",              # non-integer decimation
            "cwnd@0",              # step below 1
            "probe@4",             # event channels are never thinned
            "flow=abc",
            "link=",
        ],
    )
    def test_strict_parse_rejects(self, bad):
        with pytest.raises(ValueError):
            TraceSpec.parse(bad)

    @pytest.mark.parametrize(
        "text", ["all", "cwnd@8,queue,probe", "cwnd,flow=1,flow=3,link=a*"]
    )
    def test_to_string_round_trips(self, text):
        spec = TraceSpec.parse(text)
        assert TraceSpec.parse(spec.to_string()) == spec


class TestTelemetry:
    def test_disabled_channel_is_ignored(self):
        bus = Telemetry(TraceSpec.parse("cwnd"))
        bus.on_cwnd(0.1, 0, 4.0, 64.0)
        bus.on_rtt(0.1, 0, 1e-3)
        assert bus.counts() == {"cwnd": 1}
        assert [r.channel for r in bus.records()] == ["cwnd"]

    def test_flow_filter(self):
        bus = Telemetry(TraceSpec.parse("cwnd,flow=1"))
        bus.on_cwnd(0.1, 1, 2.0, 64.0)
        bus.on_cwnd(0.1, 2, 2.0, 64.0)
        assert [r.flow for r in bus.records("cwnd")] == [1]

    def test_link_filter_applies_to_direct_queue_calls(self):
        bus = Telemetry(TraceSpec.parse("queue,link=a*"))
        bus.on_queue_sample(0.1, "a->b", 3)
        bus.on_queue_sample(0.1, "b->a", 3)
        bus.on_queue_event(0.2, "b->a", "drop", 8)
        assert [r.link for r in bus.records("queue")] == ["a->b"]

    def test_decimation_keeps_first_of_every_n_per_flow(self):
        bus = Telemetry(TraceSpec.parse("cwnd@4"))
        for i in range(8):
            bus.on_cwnd(i * 0.01, 0, float(i), 64.0)
            bus.on_cwnd(i * 0.01, 1, float(100 + i), 64.0)
        # Per-(channel, flow) counters: each flow keeps samples 0 and 4.
        assert [r.cwnd for r in bus.records("cwnd")] == [0.0, 100.0, 4.0, 104.0]

    def test_ring_overflow_evicts_oldest_and_counts(self):
        bus = Telemetry(TraceSpec.parse("cwnd"), capacity=4)
        for i in range(6):
            bus.on_cwnd(i * 0.01, 0, float(i), 64.0)
        assert [r.cwnd for r in bus.records("cwnd")] == [2.0, 3.0, 4.0, 5.0]
        assert bus.overflow["cwnd"] == 2

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Telemetry(capacity=0)

    def test_records_merge_in_emission_order(self):
        bus = Telemetry(TraceSpec.parse("all"))
        bus.on_cwnd(0.1, 0, 2.0, 64.0)
        bus.on_state(0.2, 0, "recovery")
        bus.on_rtt(0.3, 0, 1e-3)
        bus.on_fault(0.4, "link down")
        assert [r.channel for r in bus.records()] == [
            "cwnd", "state", "rtt", "fault",
        ]
        assert [row["ch"] for row in bus.rows()] == [
            "cwnd", "state", "rtt", "fault",
        ]

    def test_clear_resets_buffers_overflow_and_decimation(self):
        bus = Telemetry(TraceSpec.parse("cwnd@2"), capacity=1)
        for i in range(4):
            bus.on_cwnd(i * 0.01, 0, float(i), 64.0)
        bus.clear()
        assert bus.total_records() == 0
        assert bus.overflow["cwnd"] == 0
        bus.on_cwnd(1.0, 0, 9.0, 64.0)  # decimation counter restarted
        assert [r.cwnd for r in bus.records("cwnd")] == [9.0]

    def test_unknown_channel_query_raises(self):
        with pytest.raises(ValueError):
            Telemetry().records("bogus")

    def test_queue_tap_gated_by_channel_and_link(self):
        sim = Simulator()
        assert Telemetry(TraceSpec.parse("cwnd")).queue_tap(sim, "x") is None
        bus = Telemetry(TraceSpec.parse("queue,link=a*"))
        assert bus.queue_tap(sim, "b->a") is None
        assert bus.queue_tap(sim, "a->b") is not None


class TestQueueCauses:
    """Queues report *why* a packet left early through their tap."""

    @staticmethod
    def _tapped(queue_cls, *args):
        sim = Simulator()
        bus = Telemetry(TraceSpec.parse("queue"))
        queue = queue_cls(*args)
        queue.tap = bus.queue_tap(sim, "L")
        return bus, queue

    @staticmethod
    def _pkt(ecn_capable=False):
        return Packet(0, 1, 2, "data", seq=0, ecn_capable=ecn_capable)

    def test_tail_drop_cause(self):
        bus, queue = self._tapped(DropTailQueue, 2)
        for _ in range(3):
            queue.enqueue(self._pkt())
        kinds = [r.kind for r in bus.records("queue")]
        assert kinds == ["drop"]
        assert bus.records("queue")[0].backlog == 2

    def test_resize_eviction_cause(self):
        bus, queue = self._tapped(DropTailQueue, 4)
        for _ in range(4):
            queue.enqueue(self._pkt())
        assert queue.resize(2) == 2
        assert [r.kind for r in bus.records("queue")] == ["evict", "evict"]

    def test_ecn_mark_cause(self):
        bus, queue = self._tapped(EcnQueue, 8, 1)
        queue.enqueue(self._pkt(ecn_capable=True))
        queue.enqueue(self._pkt(ecn_capable=True))  # backlog 1 >= threshold
        assert [r.kind for r in bus.records("queue")] == ["mark"]


class TestExport:
    @staticmethod
    def _rows():
        bus = Telemetry(TraceSpec.parse("all"))
        bus.on_cwnd(0.015625, 3, 4.5, 64.0)
        bus.on_queue_event(0.03125, "sw->fe", "drop", 8)
        bus.on_probe(0.0625, 3, "enter", saved_cwnd=12.0, n_probes=2)
        return bus.rows()

    def test_jsonl_round_trip_and_check(self, tmp_path):
        path = tmp_path / "t.jsonl"
        rows = self._rows()
        assert write_jsonl(rows, path) == path
        assert load_jsonl(path) == rows
        assert check_jsonl(path) == len(rows)

    def test_identical_rows_are_byte_identical(self, tmp_path):
        a = write_jsonl(self._rows(), tmp_path / "a.jsonl")
        b = write_jsonl(self._rows(), tmp_path / "b.jsonl")
        assert a.read_bytes() == b.read_bytes()

    def test_check_rejects_non_canonical_form(self, tmp_path):
        path = tmp_path / "t.jsonl"
        # Same JSON value, but with whitespace: parses, fails round-trip.
        path.write_text(dump_row(self._rows()[0]).replace(",", ", ") + "\n")
        with pytest.raises(ValueError, match="canonical"):
            check_jsonl(path)

    def test_check_rejects_bad_schema_and_bad_json(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text('{"ch":"cwnd","t":0.1}\n')  # missing flow/cwnd keys
        with pytest.raises(ValueError):
            check_jsonl(path)
        path.write_text("not json\n")
        with pytest.raises(ValueError, match="bad JSON"):
            check_jsonl(path)

    def test_validate_row_rejects_unknown_channel(self):
        with pytest.raises(ValueError):
            validate_row({"ch": "nope", "t": 0.0})

    def test_csv_header_leads_with_ch_and_t(self, tmp_path):
        path = write_csv(self._rows(), tmp_path / "t.csv")
        header = path.read_text().splitlines()[0].split(",")
        assert header[:2] == ["ch", "t"]
        assert header[2:] == sorted(header[2:])


class TestTimelines:
    CWND_ROWS = [
        {"ch": "cwnd", "t": 0.1, "flow": 1, "cwnd": 2.0, "ssthresh": 64.0},
        {"ch": "cwnd", "t": 0.2, "flow": 1, "cwnd": 4.0, "ssthresh": 64.0},
        {"ch": "cwnd", "t": 0.3, "flow": 1, "cwnd": 1.0, "ssthresh": 2.0},
        {"ch": "cwnd", "t": 0.15, "flow": 5, "cwnd": 9.0, "ssthresh": 64.0},
    ]

    def test_cwnd_timeline_defaults_to_lowest_flow(self):
        tl = CwndTimeline.from_rows(self.CWND_ROWS)
        assert tl.flow == 1
        assert len(tl) == 3
        assert (tl.t_start, tl.t_end) == (0.1, 0.3)
        assert (tl.min_cwnd, tl.max_cwnd) == (1.0, 4.0)
        assert tl.steps() == [(0.1, 2.0), (0.2, 4.0), (0.3, 1.0)]

    def test_cwnd_value_at_is_right_continuous(self):
        tl = CwndTimeline.from_rows(self.CWND_ROWS, flow=1)
        assert tl.value_at(0.05) is None
        assert tl.value_at(0.1) == 2.0
        assert tl.value_at(0.25) == 4.0
        assert tl.value_at(9.9) == 1.0

    def test_cwnd_timeline_errors(self):
        with pytest.raises(ValueError, match="no cwnd records"):
            CwndTimeline.from_rows([{"ch": "rtt", "t": 0.1, "flow": 0, "rtt": 1}])
        with pytest.raises(ValueError, match="flows present"):
            CwndTimeline.from_rows(self.CWND_ROWS, flow=7)

    QUEUE_ROWS = [
        {"ch": "queue", "t": 0.1, "link": "L", "kind": "sample", "backlog": 1},
        {"ch": "queue", "t": 0.2, "link": "L", "kind": "sample", "backlog": 6},
        {"ch": "queue", "t": 0.21, "link": "L", "kind": "drop", "backlog": 8},
        {"ch": "queue", "t": 0.22, "link": "L", "kind": "mark", "backlog": 7},
        {"ch": "queue", "t": 0.3, "link": "M", "kind": "sample", "backlog": 2},
    ]

    def test_queue_timeline_samples_events_and_drops(self):
        tl = QueueTimeline.from_rows(self.QUEUE_ROWS, link="L")
        assert len(tl) == 2
        assert tl.peak_backlog == 6
        assert tl.value_at(0.15) == 1
        assert tl.value_at(0.0) is None
        assert tl.events == [(0.21, "drop", 8), (0.22, "mark", 7)]
        assert tl.drops() == [(0.21, "drop", 8)]  # marks are not losses

    def test_queue_timeline_errors(self):
        with pytest.raises(ValueError, match="no queue records"):
            QueueTimeline.from_rows([])
        with pytest.raises(ValueError, match="links present"):
            QueueTimeline.from_rows(self.QUEUE_ROWS, link="Z")


class TestEnvCapture:
    def test_simulator_without_env_has_no_bus(self):
        assert Simulator().telemetry is None
        assert not capture.tracing_enabled()

    def test_simulator_auto_attaches_from_env(self, monkeypatch):
        monkeypatch.setenv(capture.ENV_SPEC, "cwnd,probe")
        sim = Simulator()
        assert sim.telemetry is not None
        assert sim.telemetry.spec.channels == frozenset({"cwnd", "probe"})
        # ... and the bus is registered for the runner's per-point drain.
        assert capture.drain_active_rows() == []

    def test_explicit_bus_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(capture.ENV_SPEC, "all")
        bus = Telemetry(TraceSpec.parse("cwnd"))
        sim = Simulator(telemetry=bus)
        assert sim.telemetry is bus

    def test_trace_path_shape(self, monkeypatch, tmp_path):
        monkeypatch.setenv(capture.ENV_OUT, str(tmp_path))
        path = capture.trace_path("fig1", "N=60 servers", 7, "deadbeefcafe")
        assert path == tmp_path / "fig1-N=60_servers-seed7-deadbeef.jsonl"
        assert capture.trace_path("fig1", "p", 7).name == "fig1-p-seed7-na.jsonl"

    def test_export_point_trace_disabled_returns_none(self):
        capture.register(Telemetry())
        assert capture.export_point_trace("fig1", "p", 1) is None
        assert capture.drain_active_rows() == []  # discarded, not leaked

    def test_export_point_trace_end_to_end(self, monkeypatch, tmp_path):
        monkeypatch.setenv(capture.ENV_SPEC, "cwnd,queue")
        monkeypatch.setenv(capture.ENV_OUT, str(tmp_path))
        sim, star, source, _sink = make_pair()
        assert sim.telemetry is not None
        source.send_message(25)
        sim.run(until=0.1)
        path = capture.export_point_trace("unit", "p0", 3, "0123456789ab")
        assert path is not None and path.parent == tmp_path
        assert check_jsonl(path) > 0
        rows = load_jsonl(path)
        assert CwndTimeline.from_rows(rows).max_cwnd >= 1.0
        assert {row["ch"] for row in rows} == {"cwnd", "queue"}


class TestInstrumentationEndToEnd:
    def test_loss_scenario_records_every_layer(self, monkeypatch):
        monkeypatch.setenv(capture.ENV_SPEC, "all")
        sim, star, source, _sink = make_pair(buffer_pkts=4)
        bus = sim.telemetry
        source.send_message(120)
        sim.run(until=2.0)
        assert source.all_acked
        rows = bus.rows()
        channels = {row["ch"] for row in rows}
        assert {"cwnd", "rtt", "state", "queue"} <= channels
        # The shallow buffer forces loss; its cause must be on the wire.
        kinds = {row["kind"] for row in rows if row["ch"] == "queue"}
        assert "drop" in kinds
        states = [row["state"] for row in rows if row["ch"] == "state"]
        assert "recovery" in states or "timeout" in states
        drop_links = {
            row["link"]
            for row in rows
            if row["ch"] == "queue" and row["kind"] == "drop"
        }
        tl = QueueTimeline.from_rows(rows, link=sorted(drop_links)[0])
        assert tl.peak_backlog >= 1
        assert tl.drops()

    def test_notify_fault_lands_on_the_bus(self):
        bus = Telemetry(TraceSpec.parse("fault"))
        sim = Simulator(telemetry=bus)
        sim.schedule_at(0.5, sim.notify_fault, "link sw->fe down")
        sim.run()
        (record,) = bus.records("fault")
        assert record.t == 0.5
        assert "down" in record.fault
