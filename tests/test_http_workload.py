"""Unit and property tests for the synthetic workload generators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.http.workload import (
    GAP_CDF_ANCHORS,
    PT_SIZE_CDF_ANCHORS,
    PiecewiseLogCdf,
    generate_onoff_schedule,
    gap_sampler,
    pt_size_sampler,
    response_schedule,
    segments_for_bytes,
)


class TestPiecewiseLogCdf:
    def test_quantile_hits_anchors_exactly(self):
        cdf = PiecewiseLogCdf(PT_SIZE_CDF_ANCHORS)
        for value, prob in PT_SIZE_CDF_ANCHORS:
            assert cdf.quantile([prob])[0] == pytest.approx(value, rel=1e-9)

    def test_cdf_inverts_quantile(self):
        cdf = PiecewiseLogCdf(PT_SIZE_CDF_ANCHORS)
        probs = np.linspace(0.0, 1.0, 21)
        roundtrip = cdf.cdf(cdf.quantile(probs))
        assert np.allclose(roundtrip, probs, atol=1e-9)

    def test_samples_within_support(self):
        rng = np.random.default_rng(1)
        cdf = pt_size_sampler()
        samples = cdf.sample(rng, 5000)
        assert samples.min() >= PT_SIZE_CDF_ANCHORS[0][0] - 1e-9
        assert samples.max() <= PT_SIZE_CDF_ANCHORS[-1][0] + 1e-9

    def test_published_fractions_reproduced(self):
        """Fig. 2(a): ≤20% of trains at or under 4 KB, ~90% under 128 KB."""
        rng = np.random.default_rng(2)
        samples = pt_size_sampler().sample(rng, 20000)
        frac_4k = float(np.mean(samples <= 4096))
        frac_128k = float(np.mean(samples <= 131072))
        assert frac_4k == pytest.approx(0.20, abs=0.02)
        assert frac_128k == pytest.approx(0.90, abs=0.02)

    def test_gap_range_matches_fig2b(self):
        rng = np.random.default_rng(3)
        gaps = gap_sampler().sample(rng, 10000)
        assert gaps.min() >= GAP_CDF_ANCHORS[0][0] - 1e-12
        assert gaps.max() <= GAP_CDF_ANCHORS[-1][0] + 1e-12

    def test_validation(self):
        with pytest.raises(ValueError):
            PiecewiseLogCdf([(1.0, 0.0)])  # too few anchors
        with pytest.raises(ValueError):
            PiecewiseLogCdf([(0.0, 0.0), (1.0, 1.0)])  # non-positive value
        with pytest.raises(ValueError):
            PiecewiseLogCdf([(2.0, 0.0), (1.0, 1.0)])  # decreasing values
        with pytest.raises(ValueError):
            PiecewiseLogCdf([(1.0, 0.1), (2.0, 1.0)])  # does not start at 0
        with pytest.raises(ValueError):
            PiecewiseLogCdf([(1.0, 0.0), (2.0, 0.9)])  # does not end at 1
        with pytest.raises(ValueError):
            PiecewiseLogCdf([(1.0, 0.0), (2.0, 0.5), (3.0, 0.4), (4.0, 1.0)])

    def test_quantile_rejects_out_of_range(self):
        cdf = pt_size_sampler()
        with pytest.raises(ValueError):
            cdf.quantile([1.5])

    def test_cdf_rejects_non_positive(self):
        with pytest.raises(ValueError):
            pt_size_sampler().cdf([0.0])

    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_property_quantile_monotone(self, u):
        cdf = pt_size_sampler()
        lo = cdf.quantile([max(0.0, u - 0.01)])[0]
        hi = cdf.quantile([min(1.0, u + 0.01)])[0]
        assert lo <= hi


class TestSizeDistributionProperties:
    """Hypothesis properties pinning the workload-realism contract:
    the paper-style size distributions are proper CDFs (monotone, with
    the published support) and sampling is a pure function of seed."""

    @settings(max_examples=200)
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0),
            min_size=2,
            max_size=50,
        )
    )
    def test_property_cdf_monotone(self, probs):
        """F(x) is non-decreasing along any increasing value path."""
        for sampler in (pt_size_sampler(), gap_sampler()):
            values = sorted(float(v) for v in sampler.quantile(sorted(probs)))
            cdf_values = sampler.cdf(values)
            assert all(a <= b + 1e-12 for a, b in zip(cdf_values, cdf_values[1:]))

    @settings(max_examples=200)
    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=1, max_value=512),
    )
    def test_property_samples_within_support(self, seed, n):
        """Every sample lands inside the anchored support, any seed."""
        for sampler, anchors in (
            (pt_size_sampler(), PT_SIZE_CDF_ANCHORS),
            (gap_sampler(), GAP_CDF_ANCHORS),
        ):
            samples = sampler.sample(np.random.default_rng(seed), n)
            assert samples.min() >= anchors[0][0] - 1e-9
            assert samples.max() <= anchors[-1][0] + 1e-9

    @settings(max_examples=200)
    @given(
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=1, max_value=512),
    )
    def test_property_seed_determinism(self, seed, n):
        """Same seed, same draw count ⇒ bit-identical sample arrays."""
        one = pt_size_sampler().sample(np.random.default_rng(seed), n)
        two = pt_size_sampler().sample(np.random.default_rng(seed), n)
        assert np.array_equal(one, two)


class TestOnOffSchedule:
    def test_events_ordered_and_within_duration(self):
        rng = np.random.default_rng(4)
        events = generate_onoff_schedule(rng, duration=0.5, start_time=1.0)
        times = [e.time for e in events]
        assert times == sorted(times)
        assert all(1.0 <= t < 1.5 for t in times)

    def test_sizes_positive(self):
        rng = np.random.default_rng(5)
        events = generate_onoff_schedule(rng, duration=0.5)
        assert all(e.size_bytes >= 1 for e in events)

    def test_drain_rate_separates_trains(self):
        """With drain accounting, consecutive events never overlap the
        previous train's transmission at the given line rate."""
        rng = np.random.default_rng(6)
        rate = 1e9
        events = generate_onoff_schedule(rng, duration=2.0, drain_rate_bps=rate)
        for a, b in zip(events, events[1:]):
            assert b.time >= a.time + a.size_bytes * 8.0 / rate

    def test_no_drain_rate_allows_tighter_packing(self):
        rng = np.random.default_rng(7)
        dense = generate_onoff_schedule(rng, duration=2.0, drain_rate_bps=None)
        rng = np.random.default_rng(7)
        sparse = generate_onoff_schedule(rng, duration=2.0, drain_rate_bps=1e6)
        assert len(dense) >= len(sparse)

    def test_duration_validation(self):
        with pytest.raises(ValueError):
            generate_onoff_schedule(np.random.default_rng(0), duration=0.0)

    def test_reproducible_from_seed(self):
        one = generate_onoff_schedule(np.random.default_rng(9), duration=1.0)
        two = generate_onoff_schedule(np.random.default_rng(9), duration=1.0)
        assert one == two


class TestResponseSchedule:
    def test_count_and_sizes(self):
        rng = np.random.default_rng(1)
        events = response_schedule(rng, 50, 0.1, 1e-3, (2000, 10000))
        assert len(events) == 50
        assert all(2000 <= e.size_bytes <= 10000 for e in events)
        assert events[0].time == 0.1

    def test_mean_interval_roughly_respected(self):
        rng = np.random.default_rng(2)
        events = response_schedule(rng, 2000, 0.0, 1e-3, (100, 200))
        span = events[-1].time - events[0].time
        assert span == pytest.approx(2.0, rel=0.15)

    def test_uniform_distribution_supported(self):
        rng = np.random.default_rng(3)
        events = response_schedule(
            rng, 10, 0.0, 1e-3, (100, 200), interval_distribution="uniform"
        )
        assert len(events) == 10

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            response_schedule(rng, 0, 0.0, 1e-3, (1, 2))
        with pytest.raises(ValueError):
            response_schedule(rng, 1, 0.0, 0.0, (1, 2))
        with pytest.raises(ValueError):
            response_schedule(rng, 1, 0.0, 1e-3, (0, 2))
        with pytest.raises(ValueError):
            response_schedule(rng, 1, 0.0, 1e-3, (1, 2), interval_distribution="zipf")


class TestSegmentsForBytes:
    def test_exact_multiple(self):
        assert segments_for_bytes(2920, 1460) == 2

    def test_rounds_up(self):
        assert segments_for_bytes(2921, 1460) == 3

    def test_minimum_one(self):
        assert segments_for_bytes(1, 1460) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            segments_for_bytes(0)
