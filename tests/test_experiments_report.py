"""Tests for the Markdown report renderer."""

import json

import pytest

from repro.experiments.report import main, render_markdown
from repro.experiments.store import save_results


def artifact(tmp_path, payload, experiment="figX"):
    return save_results(tmp_path / "a.json", experiment, payload, seed=3)


class TestRenderMarkdown:
    def test_header_metadata(self, tmp_path):
        from repro.experiments.store import load_results

        path = artifact(tmp_path, {"x": 1})
        text = render_markdown(load_results(path))
        assert "# Experiment report: figX" in text
        assert "`quick`" in text
        assert "seed: `3`" in text

    def test_scalars_as_bullets(self, tmp_path):
        from repro.experiments.store import load_results

        path = artifact(tmp_path, {"metrics": {"act": 0.005, "timeouts": 2}})
        text = render_markdown(load_results(path))
        assert "- **act**: 0.005" in text
        assert "- **timeouts**: 2" in text

    def test_record_lists_as_tables(self, tmp_path):
        from repro.experiments.store import load_results

        cases = [{"n": 2, "act": 0.1}, {"n": 4, "act": 0.2}]
        path = artifact(tmp_path, {"sweep": cases})
        text = render_markdown(load_results(path))
        assert "| n | act |" in text or "| act | n |" in text
        assert text.count("|---") >= 1

    def test_time_series_summarized(self, tmp_path):
        from repro.experiments.store import load_results
        from repro.sim.monitor import TimeSeries

        ts = TimeSeries("q")
        for i in range(5):
            ts.record(float(i), float(i * 10))
        path = artifact(tmp_path, {"trace": ts})
        text = render_markdown(load_results(path))
        assert "time series, 5 samples" in text
        assert "max=40" in text

    def test_heterogeneous_lists_fall_back(self, tmp_path):
        from repro.experiments.store import load_results

        path = artifact(tmp_path, {"mixed": [1, "two", 3.0]})
        text = render_markdown(load_results(path))
        assert "mixed" in text


class TestCli:
    def test_stdout_rendering(self, tmp_path, capsys):
        path = artifact(tmp_path, {"x": 1})
        assert main([str(path)]) == 0
        assert "# Experiment report" in capsys.readouterr().out

    def test_output_file(self, tmp_path, capsys):
        path = artifact(tmp_path, {"x": 1})
        out = tmp_path / "report.md"
        assert main([str(path), "-o", str(out)]) == 0
        assert out.read_text().startswith("# Experiment report")

    def test_rejects_foreign_json(self, tmp_path):
        bogus = tmp_path / "b.json"
        bogus.write_text(json.dumps({"nope": 1}))
        with pytest.raises(ValueError):
            main([str(bogus)])
