"""Integration tests asserting the paper's headline claims at small scale.

These are the behavioural contracts the reproduction stands on: if one
of these fails, a figure will not have the published shape.
"""

import pytest

from repro.experiments.concurrency import ConcurrencyParams, run_concurrency
from repro.experiments.motivation import MotivationParams, run_motivation
from repro.experiments.properties import PropertiesParams, run_properties_case
from tests.helpers import FAST, make_pair
from repro.tcp.base import TcpConfig


def motivation(protocol):
    return run_motivation(
        MotivationParams.quick(protocol, n_responses=100, lpt_bytes=1_000_000)
    )


class TestWindowInheritanceClaim:
    """Section II.B.1: blind inheritance causes timeouts; TRIM avoids them."""

    def test_reno_inherits_large_windows(self):
        result = motivation("reno")
        assert max(result.inherited_cwnd) > 200

    def test_reno_suffers_timeouts_and_drops(self):
        result = motivation("reno")
        assert result.total_timeouts >= 4
        assert result.dropped_packets > 100

    def test_trim_avoids_timeouts_entirely(self):
        result = motivation("trim")
        assert result.total_timeouts == 0
        assert result.dropped_packets == 0

    def test_trim_keeps_queue_small(self):
        """Fig. 6: the queue never exceeds ~20 packets."""
        result = motivation("trim")
        assert result.peak_queue_pkts <= 25

    def test_trim_finishes_faster(self):
        reno = motivation("reno")
        trim = motivation("trim")
        assert trim.all_done_time < reno.all_done_time

    def test_gip_restart_avoids_the_inherited_window_dump(self):
        """GIP's restart-at-2 removes the inherited burst (its design
        goal) even though its slow-start ramp can still overshoot — the
        paper's criticism is that it trades window for safety."""
        gip = motivation("gip")
        reno = motivation("reno")
        assert max(gip.inherited_cwnd) < 20  # vs. hundreds for Reno
        assert gip.total_timeouts <= reno.total_timeouts
        assert gip.all_done_time <= reno.all_done_time


class TestConcurrencyClaim:
    """Fig. 5 vs Fig. 7: TRIM's SPT ACT stays orders of magnitude lower."""

    @pytest.fixture(scope="class")
    def cases(self):
        out = {}
        for protocol in ("reno", "trim"):
            params = ConcurrencyParams.quick(protocol, deadline=3.0)
            out[protocol] = run_concurrency(params, n_spts=8)
        return out

    def test_reno_act_inflated_by_timeouts(self, cases):
        assert cases["reno"].act > 0.05  # dominated by 200 ms RTOs

    def test_trim_act_a_few_milliseconds(self, cases):
        assert cases["trim"].act < 0.01

    def test_trim_no_spt_timeouts(self, cases):
        assert cases["trim"].spt_timeouts == 0
        assert cases["reno"].spt_timeouts > 0

    def test_improvement_factor_order_of_magnitude(self, cases):
        assert cases["reno"].act / cases["trim"].act > 10


class TestQueueControlClaim:
    """Fig. 9: TRIM keeps a small, loss-free queue at high utilization."""

    @pytest.fixture(scope="class")
    def cases(self):
        out = {}
        for protocol in ("reno", "trim"):
            params = PropertiesParams.quick(protocol, end_time=0.5)
            out[protocol] = run_properties_case(params, n_trains=5)
        return out

    def test_trim_queue_much_smaller(self, cases):
        assert cases["trim"].average_queue_pkts < cases["reno"].average_queue_pkts / 2

    def test_trim_no_drops(self, cases):
        assert cases["trim"].dropped_packets == 0
        assert cases["reno"].dropped_packets > 0

    def test_both_keep_high_utilization(self, cases):
        assert cases["trim"].utilization > 0.9
        assert cases["reno"].utilization > 0.8

    def test_trim_no_timeouts(self, cases):
        assert cases["trim"].timeouts == 0


class TestDelayVsEcnClaim:
    """TRIM needs no switch support; DCTCP does (Section V)."""

    def test_trim_controls_queue_on_plain_droptail(self):
        config = TcpConfig(**FAST)
        sim, star, source, _sink = make_pair(
            "trim",
            config=config,
            frontend_bandwidth=200e6,
            capacity_pps=200e6 / (8 * 1460),
        )
        source.send_message(20000)
        peak = {"v": 0}

        def probe():
            peak["v"] = max(peak["v"], star.bottleneck.backlog_pkts)
            if sim.now < 0.3:
                sim.schedule(1e-4, probe)

        sim.schedule_at(0.05, probe)
        sim.run(until=0.3)
        assert peak["v"] < 40

    def test_reno_fills_droptail_queue(self):
        sim, star, source, _sink = make_pair(
            "reno", config=TcpConfig(**FAST), frontend_bandwidth=200e6
        )
        source.send_message(20000)
        peak = {"v": 0}

        def probe():
            peak["v"] = max(peak["v"], star.bottleneck.backlog_pkts)
            if sim.now < 0.3:
                sim.schedule(1e-4, probe)

        sim.schedule_at(0.05, probe)
        sim.run(until=0.3)
        assert peak["v"] >= 99  # saw-tooth touches the buffer ceiling
