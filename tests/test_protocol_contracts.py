"""Cross-protocol behavioural contracts.

Every congestion controller in the registry must satisfy the same
transport-correctness contract: reliable in-order delivery under
arbitrary loss, window floors, flow isolation, and sane completion
accounting.  Parametrizing over the registry keeps future protocols
honest for free.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.net.topology import build_star
from repro.sim.kernel import Simulator
from repro.tcp.base import TcpSink
from repro.tcp.factory import create_source, default_config
from tests.helpers import FAST, drop_seqs_once, install_loss, make_pair

ALL_PROTOCOLS = (
    "reno", "cubic", "dctcp", "l2dct", "d2tcp", "gip", "vegas", "timely",
    "trim", "tinybuffer", "tracks",
)


def pair(protocol, **kwargs):
    config = default_config(protocol, **FAST)
    extra = {}
    if protocol == "trim":
        extra["capacity_pps"] = 85616.0
    if protocol in ("dctcp", "l2dct", "d2tcp"):
        kwargs.setdefault("ecn_threshold", 17)
    return make_pair(protocol, config=config, **extra, **kwargs)


@pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
class TestReliability:
    def test_clean_path_delivers_in_order(self, protocol):
        sim, _star, source, sink = pair(protocol)
        source.send_message(120)
        sim.run(until=1.0)
        assert sink.next_expected == 120
        assert sink.duplicate_segments == 0

    def test_single_loss_repaired(self, protocol):
        sim, star, source, sink = pair(protocol)
        install_loss(star.bottleneck, drop_seqs_once({7}))
        source.send_message(40)
        sim.run(until=1.0)
        assert sink.next_expected == 40
        assert source.all_acked

    def test_burst_loss_repaired(self, protocol):
        sim, star, source, sink = pair(protocol)
        install_loss(star.bottleneck, drop_seqs_once({10, 11, 12, 13, 14}))
        source.send_message(60)
        sim.run(until=2.0)
        assert sink.next_expected == 60

    def test_window_never_below_floor(self, protocol):
        sim, star, source, _sink = pair(protocol)
        install_loss(star.bottleneck, drop_seqs_once({0, 1}))
        source.send_message(30)
        floor = source.config.min_cwnd

        def check():
            assert source.cwnd >= floor - 1e-9
            if sim.now < 0.5:
                sim.schedule(1e-3, check)

        sim.schedule_at(0.0, check)
        sim.run(until=0.5)

    def test_message_accounting_consistent(self, protocol):
        sim, _star, source, _sink = pair(protocol)
        messages = [source.send_message(10) for _ in range(5)]
        sim.run(until=1.0)
        finishes = [m.finish_time for m in messages]
        assert all(f is not None for f in finishes)
        assert finishes == sorted(finishes)  # FIFO stream completes in order

    def test_onoff_stream_delivers_everything(self, protocol):
        sim, _star, source, sink = pair(protocol)
        total = 0
        for i in range(6):
            n = 5 + 7 * i
            total += n
            sim.schedule_at(0.01 * (i + 1), lambda n=n: source.send_message(n))
        sim.run(until=1.0)
        assert sink.next_expected == total


@pytest.mark.parametrize("protocol", ALL_PROTOCOLS)
class TestIsolation:
    def test_two_flows_both_complete(self, protocol):
        sim = Simulator()
        star = build_star(
            sim, 2,
            ecn_threshold_pkts=(
                17 if protocol in ("dctcp", "l2dct", "d2tcp") else None
            ),
        )
        config = default_config(protocol, **FAST)
        extra = {"capacity_pps": 85616.0} if protocol == "trim" else {}
        messages = []
        for i, server in enumerate(star.servers):
            src = create_source(
                protocol, sim, server, flow_id=i + 1,
                dst_id=star.frontend.node_id, config=config, **extra,
            )
            TcpSink(sim, star.frontend, flow_id=i + 1)
            messages.append(src.send_message(300))
        sim.run(until=2.0)
        assert all(m.finish_time is not None for m in messages)


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    losses=st.sets(st.integers(min_value=0, max_value=59), max_size=12),
    protocol=st.sampled_from(("reno", "cubic", "trim")),
)
def test_property_delivery_under_arbitrary_loss(losses, protocol):
    """Whatever single-transmission losses occur, the stream completes."""
    extra = {"capacity_pps": 85616.0} if protocol == "trim" else {}
    sim, star, source, sink = make_pair(
        protocol, config=default_config(protocol, **FAST), **extra
    )
    install_loss(star.bottleneck, drop_seqs_once(losses))
    source.send_message(60)
    sim.run(until=3.0)
    assert sink.next_expected == 60
    assert source.all_acked
