"""Unit tests for CUBIC, DCTCP, L2DCT, and the GIP-style baseline."""

import pytest

from repro.tcp.base import TcpConfig
from repro.tcp.cubic import CubicSource
from repro.tcp.dctcp import DctcpSource
from repro.tcp.factory import (
    ECN_PROTOCOLS,
    create_source,
    default_config,
    source_class,
)
from repro.tcp.l2dct import L2dctSource
from tests.helpers import FAST, drop_seqs_once, install_loss, make_pair


class TestFactory:
    def test_all_protocols_resolve(self):
        for name in ("reno", "cubic", "dctcp", "l2dct", "d2tcp", "gip",
                      "vegas", "timely", "trim"):
            assert source_class(name).protocol_name == name

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError, match="unknown protocol"):
            source_class("bbr")

    def test_default_config_sets_ecn_for_dctcp_family(self):
        for name in ECN_PROTOCOLS:
            assert default_config(name).ecn_capable

    def test_default_config_plain_for_reno(self):
        config = default_config("reno")
        assert not config.ecn_capable
        assert config.recovery == "reno"

    def test_cubic_gets_newreno_recovery(self):
        assert default_config("cubic").recovery == "newreno"

    def test_create_source_attaches_to_host(self):
        sim, star, source, _sink = make_pair("cubic", config=default_config("cubic", **FAST))
        assert star.servers[0].agent_for(1) is source


class TestCubic:
    def test_loss_cut_is_beta(self):
        config = default_config("cubic", **FAST)
        sim, star, source, _sink = make_pair("cubic", config=config)
        install_loss(star.bottleneck, drop_seqs_once({20}))
        source.send_message(60)
        sim.run(until=1.0)
        assert source.w_max > 0
        assert source.stats.fast_retransmits == 1

    def test_fast_convergence_shrinks_w_max(self):
        config = default_config("cubic", **FAST)
        _sim, _star, source, _sink = make_pair("cubic", config=config)
        source.cwnd = 50.0
        source.w_max = 100.0
        source._halve_window_on_loss()
        assert source.w_max == pytest.approx(50.0 * (2 - CubicSource.BETA) / 2)

    def test_no_fast_convergence_above_w_max(self):
        config = default_config("cubic", **FAST)
        _sim, _star, source, _sink = make_pair("cubic", config=config)
        source.cwnd = 100.0
        source.w_max = 50.0
        new_ssthresh = source._halve_window_on_loss()
        assert source.w_max == 100.0
        assert new_ssthresh == pytest.approx(70.0)

    def test_cubic_growth_concave_then_convex(self):
        """Window growth slows approaching w_max then accelerates past it."""
        config = default_config("cubic", initial_ssthresh=2.0, **FAST)
        sim, _star, source, _sink = make_pair("cubic", config=config)
        source.w_max = 30.0
        source.rtt.sample(0.0002)
        source.send_message(4000)
        deltas = []
        last = source.cwnd

        def track():
            nonlocal last
            deltas.append(source.cwnd - last)
            last = source.cwnd

        for i in range(30):
            sim.schedule_at(0.001 * (i + 1), track)
        sim.run(until=0.031)
        assert len(deltas) == 30

    def test_completes_transfer(self):
        config = default_config("cubic", **FAST)
        sim, _star, source, sink = make_pair("cubic", config=config)
        source.send_message(500)
        sim.run(until=1.0)
        assert sink.next_expected == 500


class TestDctcp:
    def test_requires_ecn_config(self):
        with pytest.raises(ValueError, match="ECN"):
            make_pair("dctcp", config=TcpConfig(ecn_capable=False, **FAST))

    def test_alpha_decays_without_marks(self):
        config = default_config("dctcp", **FAST)
        sim, _star, source, _sink = make_pair(
            "dctcp", config=config, ecn_threshold=90
        )
        source.send_message(300)
        sim.run(until=1.0)
        assert source.alpha < 1.0  # started at 1, no marks ever

    def test_marked_window_cuts_and_exits_slow_start(self):
        config = default_config("dctcp", **FAST)
        # The front-end link is the bottleneck so the queue forms at a
        # marking-capable switch port.
        sim, _star, source, sink = make_pair(
            "dctcp", config=config, ecn_threshold=17, buffer_pkts=100,
            frontend_bandwidth=500e6,
        )
        source.send_message(2000)
        sim.run(until=1.0)
        assert sink.next_expected == 2000
        assert source.stats.timeouts == 0
        assert source.ssthresh < 1e12  # a cut ended slow start

    def test_queue_kept_near_threshold(self):
        config = default_config("dctcp", **FAST)
        sim, star, source, _sink = make_pair(
            "dctcp", config=config, ecn_threshold=17, frontend_bandwidth=500e6
        )
        source.send_message(20000)
        peak = {"v": 0}

        def probe():
            peak["v"] = max(peak["v"], star.bottleneck.backlog_pkts)
            if sim.now < 0.3:
                sim.schedule(1e-4, probe)

        sim.schedule_at(0.1, probe)  # skip slow-start transient
        sim.run(until=0.3)
        assert peak["v"] < 60  # well below the 100-packet buffer

    def test_alpha_formula(self):
        config = default_config("dctcp", **FAST)
        _sim, _star, source, _sink = make_pair(
            "dctcp", config=config, ecn_threshold=17
        )
        source.alpha = 0.5
        source._acked_in_window = 8
        source._marked_in_window = 4
        source._window_end = 0

        class FakeAck:
            ack = 0
            ece = False

        source._on_ack_pre_increase(0, FakeAck())
        g = DctcpSource.G
        assert source.alpha == pytest.approx((1 - g) * 0.5 + g * 0.5)


class TestL2dct:
    def test_weight_bounds(self):
        config = default_config("l2dct", **FAST)
        _sim, _star, source, _sink = make_pair(
            "l2dct", config=config, ecn_threshold=17
        )
        assert source._weight() == pytest.approx(L2dctSource.W_MAX)
        source.highest_ack = 10**9
        assert source._weight() == pytest.approx(L2dctSource.W_MIN)

    def test_weight_monotone_decreasing(self):
        config = default_config("l2dct", **FAST)
        _sim, _star, source, _sink = make_pair(
            "l2dct", config=config, ecn_threshold=17
        )
        weights = []
        for acked in (0, 100, 300, 600):
            source.highest_ack = acked
            weights.append(source._weight())
        assert weights == sorted(weights, reverse=True)

    def test_completes_transfer_with_marks(self):
        config = default_config("l2dct", **FAST)
        sim, _star, source, sink = make_pair(
            "l2dct", config=config, ecn_threshold=17, frontend_bandwidth=500e6
        )
        source.send_message(1500)
        sim.run(until=1.0)
        assert sink.next_expected == 1500
        assert source.stats.timeouts == 0

    def test_slow_start_capped_at_reno_rate(self):
        config = default_config("l2dct", **FAST)
        sim, _star, source, _sink = make_pair(
            "l2dct", config=config, ecn_threshold=90
        )
        source.send_message(20)
        sim.run(until=1.0)
        # +1 per ACK at most, exactly like Reno in slow start.
        assert source.cwnd <= 2.0 + 20 + 1e-9


class TestGip:
    def test_restart_at_two_after_gap(self):
        config = default_config("gip", **FAST)
        sim, _star, source, _sink = make_pair("gip", config=config)
        source.send_message(100)
        sim.run(until=0.05)
        cwnd_before = source.cwnd
        assert cwnd_before > 50
        # Idle much longer than the smoothed RTT, then send again.
        sim.schedule_at(0.1, lambda: source.send_message(10))
        sim.run(until=0.1 + 2e-4)
        assert source.cwnd <= cwnd_before
        assert source.cwnd <= 3.0  # restarted at the minimum window

    def test_no_restart_mid_train(self):
        config = default_config("gip", **FAST)
        sim, _star, source, _sink = make_pair("gip", config=config)
        source.send_message(100)
        sim.run(until=0.05)
        assert source.cwnd > 50  # continuous sending never reset it

    def test_completes_onoff_stream(self):
        config = default_config("gip", **FAST)
        sim, _star, source, sink = make_pair("gip", config=config)
        for i in range(5):
            sim.schedule_at(0.01 * (i + 1), lambda: source.send_message(20))
        sim.run(until=1.0)
        assert sink.next_expected == 100
