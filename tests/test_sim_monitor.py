"""Unit tests for time series and samplers."""

import pytest

from repro.sim.kernel import Simulator
from repro.sim.monitor import PeriodicSampler, TimeSeries, rate_series


class TestTimeSeries:
    def test_record_and_len(self):
        ts = TimeSeries("q")
        ts.record(0.0, 1.0)
        ts.record(1.0, 2.0)
        assert len(ts) == 2

    def test_iteration_yields_pairs(self):
        ts = TimeSeries()
        ts.record(0.0, 5.0)
        assert list(ts) == [(0.0, 5.0)]

    def test_last(self):
        ts = TimeSeries()
        ts.record(0.0, 1.0)
        ts.record(2.0, 3.0)
        assert ts.last() == (2.0, 3.0)

    def test_last_empty_raises(self):
        with pytest.raises(IndexError):
            TimeSeries().last()

    def test_min_max(self):
        ts = TimeSeries()
        for t, v in enumerate((5.0, 1.0, 3.0)):
            ts.record(float(t), v)
        assert ts.max() == 5.0
        assert ts.min() == 1.0

    def test_mean(self):
        ts = TimeSeries()
        for t, v in enumerate((1.0, 2.0, 3.0)):
            ts.record(float(t), v)
        assert ts.mean() == 2.0

    def test_mean_empty_raises(self):
        with pytest.raises(ValueError):
            TimeSeries().mean()

    def test_time_average_step_function(self):
        ts = TimeSeries()
        ts.record(0.0, 10.0)  # held for 1s
        ts.record(1.0, 0.0)  # held for 3s
        ts.record(4.0, 99.0)  # terminal sample: no weight
        assert ts.time_average() == pytest.approx(10.0 / 4.0)

    def test_time_average_needs_two_samples(self):
        ts = TimeSeries()
        ts.record(0.0, 1.0)
        with pytest.raises(ValueError):
            ts.time_average()

    def test_time_average_zero_span_raises(self):
        ts = TimeSeries()
        ts.record(1.0, 1.0)
        ts.record(1.0, 2.0)
        with pytest.raises(ValueError):
            ts.time_average()

    def test_window_half_open(self):
        ts = TimeSeries("w")
        for t in range(5):
            ts.record(float(t), float(t))
        cut = ts.window(1.0, 3.0)
        assert cut.times == [1.0, 2.0]
        assert cut.name == "w"


class TestPeriodicSampler:
    def test_samples_at_period(self):
        sim = Simulator()
        values = iter(range(100))
        sampler = PeriodicSampler(sim, 0.1, lambda: next(values)).start()
        sim.run(until=0.35)
        assert sampler.series.times == pytest.approx([0.0, 0.1, 0.2, 0.3])
        assert sampler.series.values == [0, 1, 2, 3]

    def test_start_at_offset(self):
        sim = Simulator()
        sampler = PeriodicSampler(sim, 0.1, lambda: 1.0).start(at=0.5)
        sim.run(until=0.65)
        assert sampler.series.times == pytest.approx([0.5, 0.6])

    def test_stop_halts_sampling(self):
        sim = Simulator()
        sampler = PeriodicSampler(sim, 0.1, lambda: 1.0).start()
        sim.schedule(0.25, sampler.stop)
        sim.run(until=1.0)
        assert len(sampler.series) == 3  # 0.0, 0.1, 0.2

    def test_non_positive_period_rejected(self):
        with pytest.raises(ValueError):
            PeriodicSampler(Simulator(), 0.0, lambda: 1.0)


class TestRateSeries:
    def test_bins_events_into_rates(self):
        series = rate_series([0.05, 0.15, 0.18], [10.0, 20.0, 30.0], bin_width=0.1, end=0.2)
        assert series.values == pytest.approx([100.0, 500.0])

    def test_events_outside_range_ignored(self):
        series = rate_series([-1.0, 0.05, 5.0], [1.0, 1.0, 1.0], bin_width=0.1, end=0.1)
        assert series.values == pytest.approx([10.0])

    def test_empty_events(self):
        series = rate_series([], [], bin_width=0.1, end=0.2)
        assert all(v == 0.0 for v in series.values)

    def test_invalid_bin_width(self):
        with pytest.raises(ValueError):
            rate_series([0.0], [1.0], bin_width=0.0)
