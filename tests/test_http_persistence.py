"""Persistent vs non-persistent sessions: the paper's premise.

HTTP keeps connections persistent to avoid per-request handshakes and
cold congestion windows (Section II.B.1).  These tests quantify both
effects with the :class:`HttpSession` modes.
"""

import pytest

from repro.http.apps import HttpSession
from repro.net.topology import build_star
from repro.sim.kernel import Simulator
from repro.tcp.base import TcpConfig
from tests.helpers import FAST


def make_session(persistent, protocol="reno", delay=200e-6):
    sim = Simulator()
    star = build_star(sim, 1, delay_s=delay)
    session = HttpSession(
        sim, star.frontend, star.servers[0], protocol,
        request_flow_id=100, response_flow_id=200,
        config=TcpConfig(**FAST), persistent=persistent,
    )
    return sim, star, session


class TestNonPersistent:
    def test_exchange_completes(self):
        sim, _star, session = make_session(persistent=False)
        exchange = session.request(10_000)
        sim.run(until=0.5)
        assert exchange.response is not None
        assert exchange.response.finish_time is not None

    def test_handshake_adds_a_round_trip(self):
        sim_p, _sp, persistent = make_session(persistent=True)
        e_p = persistent.request(1460)
        sim_p.run(until=0.5)
        sim_n, _sn, nonpersistent = make_session(persistent=False)
        e_n = nonpersistent.request(1460)
        sim_n.run(until=0.5)
        base_rtt = 4 * 200e-6
        assert e_n.completion_time >= e_p.completion_time + 0.8 * base_rtt

    def test_fresh_connections_per_exchange(self):
        sim, star, session = make_session(persistent=False)
        session.request(1460)
        session.request(1460)
        sim.run(until=0.5)
        sources = [getattr(e, "_response_source") for e in session.exchanges]
        assert sources[0] is not sources[1]

    def test_cold_window_every_time(self):
        """Back-to-back large responses never benefit from history: each
        fresh connection slow-starts from the initial window."""

        def total_time(persistent):
            sim, _star, session = make_session(persistent=persistent)
            done = []

            def chain(exchange=None):
                if exchange is not None:
                    done.append(exchange)
                if len(session.exchanges) < 6:
                    session.request(80_000, on_complete=chain)

            chain()
            sim.run(until=2.0)
            assert len(done) == 6
            return sum(e.completion_time for e in done)

        assert total_time(persistent=True) < total_time(persistent=False)

    def test_persistent_flag_default_true(self):
        _sim, _star, session = make_session(persistent=True)
        assert session.persistent
        assert session.request_source is not None
