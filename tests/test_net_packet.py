"""Unit tests for packets and ACK construction."""

from repro.net.packet import ACK, ACK_BYTES, DATA, MSS_BYTES, Packet, make_ack


def data_packet(**overrides):
    defaults = dict(flow_id=1, src=10, dst=20, kind=DATA, seq=5, ts=0.25)
    defaults.update(overrides)
    return Packet(**defaults)


class TestPacket:
    def test_defaults(self):
        pkt = data_packet()
        assert pkt.size_bytes == MSS_BYTES
        assert not pkt.is_retransmission
        assert not pkt.is_probe
        assert not pkt.ecn_capable
        assert not pkt.ecn_ce
        assert pkt.hops == 0

    def test_kind_properties(self):
        assert data_packet().is_data
        assert not data_packet().is_ack
        ack = Packet(flow_id=1, src=20, dst=10, kind=ACK, ack=4)
        assert ack.is_ack
        assert not ack.is_data

    def test_repr_mentions_flags(self):
        pkt = data_packet(is_retransmission=True, is_probe=True)
        text = repr(pkt)
        assert "R" in text and "P" in text


class TestMakeAck:
    def test_reverses_direction_and_keeps_flow(self):
        pkt = data_packet()
        ack = make_ack(pkt, ack=4, now=1.0)
        assert (ack.src, ack.dst) == (pkt.dst, pkt.src)
        assert ack.flow_id == pkt.flow_id
        assert ack.kind == ACK
        assert ack.size_bytes == ACK_BYTES

    def test_echo_fields(self):
        pkt = data_packet(is_retransmission=True, is_probe=True)
        pkt.ecn_ce = True
        ack = make_ack(pkt, ack=5, now=2.0)
        assert ack.for_seq == pkt.seq
        assert ack.ts_echo == pkt.ts
        assert ack.echo_retx
        assert ack.echo_probe
        assert ack.ece

    def test_clean_packet_echoes_clean(self):
        ack = make_ack(data_packet(), ack=5, now=2.0)
        assert not ack.echo_retx
        assert not ack.echo_probe
        assert not ack.ece

    def test_cumulative_ack_value(self):
        ack = make_ack(data_packet(seq=9), ack=3, now=0.0)
        assert ack.ack == 3  # cumulative, independent of the trigger seq
        assert ack.for_seq == 9
