"""Tests for the ``python -m repro.experiments`` command line."""

import pytest

from repro.experiments import __main__ as cli


class TestArgumentParsing:
    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit):
            cli.main(["fig99"])

    def test_bad_preset_rejected(self):
        with pytest.raises(SystemExit):
            cli.main(["fig4", "--preset", "huge"])

    def test_experiment_table_covers_all_figures(self):
        expected = {
            "fig1", "fig2", "fig4", "fig5", "fig6", "fig7", "fig8",
            "fig9", "fig10", "fig11", "fig12", "table1", "fig13a",
            "fig13be", "ablations", "incast",
        }
        assert expected == set(cli.EXPERIMENTS)


class TestExecution:
    def test_fig1_runs_end_to_end(self, capsys):
        assert cli.main(["fig1", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Fig.1/2 workload" in out
        assert "LPTs" in out

    def test_protocol_list_parsing(self, capsys):
        # fig1 ignores protocols but exercises the parsing path.
        assert cli.main(["fig2", "--protocols", "reno , trim,"]) == 0

    def test_quick_experiment_with_single_protocol(self, capsys):
        assert cli.main(["fig4", "--protocols", "reno"]) == 0
        out = capsys.readouterr().out
        assert "inherited cwnd" in out
        assert "timeouts/conn" in out
