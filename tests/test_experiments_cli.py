"""Tests for the ``python -m repro.experiments`` command line."""

import pytest

from repro.experiments import __main__ as cli


class TestArgumentParsing:
    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit):
            cli.main(["fig99"])

    def test_bad_preset_rejected(self):
        with pytest.raises(SystemExit):
            cli.main(["fig4", "--preset", "huge"])

    def test_experiment_table_covers_all_figures(self):
        expected = {
            "fig1", "fig2", "fig4", "fig5", "fig6", "fig7", "fig8",
            "fig9", "fig10", "fig11", "fig12", "table1", "fig13a",
            "fig13be", "ablations", "incast", "faults", "openloop",
            "matrix",
        }
        assert expected == set(cli.EXPERIMENTS)

    def test_resume_requires_checkpointing(self):
        with pytest.raises(SystemExit):
            cli.main(["faults", "--resume", "--no-checkpoint"])

    def test_fault_plan_rejected_for_wrong_experiment(self, tmp_path):
        plan = tmp_path / "plan.json"
        plan.write_text('[{"kind": "link_down", "time": 0.1}]')
        with pytest.raises(SystemExit):
            cli.main(["fig4", "--fault-plan", str(plan)])

    def test_malformed_fault_plan_rejected_at_parse_time(self, tmp_path):
        plan = tmp_path / "plan.json"
        plan.write_text('[{"kind": "meteor_strike", "time": 0.1}]')
        with pytest.raises(SystemExit):
            cli.main(["faults", "--fault-plan", str(plan)])


class TestExecution:
    def test_fig1_runs_end_to_end(self, capsys):
        assert cli.main(["fig1", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "Fig.1/2 workload" in out
        assert "LPTs" in out

    def test_protocol_list_parsing(self, capsys):
        # fig1 ignores protocols but exercises the parsing path.
        assert cli.main(["fig2", "--protocols", "reno , trim,"]) == 0

    def test_quick_experiment_with_single_protocol(self, capsys):
        assert cli.main(["fig4", "--protocols", "reno"]) == 0
        out = capsys.readouterr().out
        assert "inherited cwnd" in out
        assert "timeouts/conn" in out

    def test_faults_experiment_with_plan_checkpoint_and_resume(
        self, tmp_path, capsys
    ):
        plan = tmp_path / "plan.json"
        plan.write_text(
            '[{"kind": "loss_burst", "time": 0.05, "link": "sw->frontend",'
            ' "rate": 0.2, "duration": 0.1}]'
        )
        journal = tmp_path / "journal.jsonl"
        argv = [
            "faults", "--preset", "quick", "--protocols", "reno",
            "--no-cache", "--fault-plan", str(plan),
            "--checkpoint", str(journal),
        ]
        assert cli.main(argv) == 0
        out = capsys.readouterr().out
        assert "fault intensity" in out
        assert "injected" in out
        assert journal.exists()

        assert cli.main(argv + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "2/2 resumed" in out


class TestDispatchCli:
    """The --backend dispatch / --hosts / --retry-policy surface."""

    def test_hosts_requires_dispatch_backend(self):
        with pytest.raises(SystemExit):
            cli.main(["fig1", "--hosts", "local:2"])

    def test_bad_retry_policy_rejected_at_parse_time(self):
        with pytest.raises(SystemExit):
            cli.main(["fig1", "--retry-policy", "attempts=2,warp=9"])

    def test_bad_hosts_spec_rejected_at_parse_time(self):
        with pytest.raises(SystemExit):
            cli.main(
                ["fig1", "--backend", "dispatch", "--hosts", "local:many"]
            )

    @staticmethod
    def _toys(monkeypatch):
        """Put the dispatch toys on both our and the workers' paths."""
        import os
        import sys
        from pathlib import Path

        tests_dir = str(Path(__file__).resolve().parent)
        if tests_dir not in sys.path:
            sys.path.insert(0, tests_dir)
        existing = os.environ.get("PYTHONPATH", "")
        joined = (
            tests_dir + os.pathsep + existing if existing else tests_dir
        )
        monkeypatch.setenv("PYTHONPATH", joined)
        import dispatch_toys

        return dispatch_toys

    def test_dispatch_backend_runs_end_to_end(
        self, monkeypatch, tmp_path, capsys
    ):
        dispatch_toys = self._toys(monkeypatch)

        class _CliEcho(dispatch_toys.EchoExperiment):
            uses_protocols = False

            def make_params(self, preset="quick", protocol=None, **overrides):
                return dispatch_toys.ToyParams(n_points=4)

        monkeypatch.setitem(cli.EXPERIMENTS, "toyecho", _CliEcho())
        argv = [
            "toyecho", "--preset", "quick", "--no-cache",
            "--backend", "dispatch", "--jobs", "2",
            "--checkpoint", str(tmp_path / "journal.jsonl"),
            "--retry-policy", "attempts=2,base=0.01",
        ]
        assert cli.main(argv) == 0

    def test_quarantined_point_exits_nonzero_with_evidence(
        self, monkeypatch, tmp_path, capsys
    ):
        dispatch_toys = self._toys(monkeypatch)

        class _CliPoison(dispatch_toys.PoisonExperiment):
            uses_protocols = False

            def make_params(self, preset="quick", protocol=None, **overrides):
                return dispatch_toys.ToyParams(n_points=4, labels=("p1",))

        monkeypatch.setitem(cli.EXPERIMENTS, "toypoison", _CliPoison())
        journal = tmp_path / "journal.jsonl"
        argv = [
            "toypoison", "--preset", "quick", "--no-cache",
            "--backend", "dispatch", "--jobs", "2",
            "--checkpoint", str(journal),
            "--retry-policy", "attempts=4,base=0.01",
        ]
        with pytest.warns(RuntimeWarning, match="failed"):
            exit_code = cli.main(argv)
        assert exit_code == 1
        captured = capsys.readouterr()
        assert "QUARANTINED" in captured.out
        assert "quarantined" in captured.err
        quarantine = tmp_path / "toypoison-quick-seed1.quarantine.jsonl"
        assert quarantine.exists()
        assert "repro-quarantine/1" in quarantine.read_text()


class TestReportPartial:
    """The interrupted-sweep fallback must never hide surviving data."""

    class _ChokingExperiment:
        id = "choker"

        def report(self, params, payload):
            raise KeyError("partial payload has holes")

    def test_failed_report_dumps_payload_to_stderr(self, capsys):
        exp = self._ChokingExperiment()
        cli._report_partial([(exp, None)], [{"salvaged": 41}])
        err = capsys.readouterr().err
        # The error class and the raw payload both surface: an operator
        # who interrupted a long sweep can still recover the results.
        assert "KeyError" in err
        assert "choker" in err
        assert "{'salvaged': 41}" in err

    def test_none_payload_skipped_silently(self, capsys):
        exp = self._ChokingExperiment()
        cli._report_partial([(exp, None)], [None])
        assert capsys.readouterr().err == ""
