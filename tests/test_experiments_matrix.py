"""Tests for the competitor-protocol matrix experiment."""

import math

import pytest

from repro.experiments import registry
from repro.experiments.matrix import (
    MatrixCase,
    MatrixParams,
    run_matrix_point,
)
from repro.experiments.store import to_jsonable
from repro.runner import SweepRunner
from repro.runner.checkpoint import SweepCheckpoint

TINY = dict(
    n_senders=3,
    block_bytes=8 * 1024,
    waves=1,
    load_blocks=2,
    deadline=2.0,
)


def tiny_params(protocol="trim", **overrides):
    merged = dict(TINY)
    merged.update(overrides)
    return MatrixParams.quick(protocol, **merged)


class TestGrid:
    def test_points_cover_full_grid(self):
        exp = registry.get("matrix")
        params = MatrixParams.paper("trim")
        points = exp.points(params)
        assert len(points) == 3 * 2 * 2  # scenario x buffer x qdisc
        assert len({p.label for p in points}) == len(points)
        assert "incast-b8-droptail" in {p.label for p in points}

    def test_quick_preset_shrinks_grid(self):
        params = MatrixParams.quick("trim")
        assert "load" not in params.scenarios

    def test_partner_defaults_head_to_head(self):
        assert MatrixParams.quick("trim").partner() == "reno"
        assert MatrixParams.quick("tinybuffer").partner() == "trim"
        assert MatrixParams.quick("tracks").partner() == "trim"
        assert MatrixParams.quick("tracks", baseline="cubic").partner() == "cubic"

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError):
            run_matrix_point(tiny_params(), "teleport", 8, "droptail", 1)

    def test_unknown_qdisc_rejected(self):
        with pytest.raises(ValueError):
            run_matrix_point(tiny_params(), "incast", 8, "codel", 1)


class TestScenarios:
    @pytest.mark.parametrize("qdisc", ["droptail", "fairq"])
    def test_incast_completes_all_blocks(self, qdisc):
        case = run_matrix_point(tiny_params(), "incast", 64, qdisc, 1)
        assert isinstance(case, MatrixCase)
        assert case.completed == case.offered == 3
        assert case.goodput_bps > 0
        assert not math.isnan(case.fct_mean)
        assert math.isnan(case.share)  # single-protocol cell

    def test_coexist_measures_share_and_fairness(self):
        case = run_matrix_point(
            tiny_params("tracks"), "coexist", 64, "fairq", 1
        )
        assert 0.0 < case.share < 1.0
        assert 0.0 < case.jain <= 1.0
        assert case.completed > 0

    def test_load_runs_open_loop_arrivals(self):
        case = run_matrix_point(tiny_params(), "load", 64, "droptail", 1)
        assert case.offered == 2 * 3  # load_blocks x senders
        assert case.completed == case.offered

    def test_fairq_cell_marks_ecn_capable_flows(self):
        # A shallow fairq cell with an ECT protocol must exercise the
        # fair-share feedback path (tinybuffer marks ECT by default).
        case = run_matrix_point(
            tiny_params("tinybuffer", n_senders=4, block_bytes=64 * 1024),
            "coexist",
            8,
            "fairq",
            1,
        )
        assert case.marked_packets > 0

    def test_same_seed_reproduces_load_cell(self):
        a = run_matrix_point(tiny_params(), "load", 8, "droptail", 7)
        b = run_matrix_point(tiny_params(), "load", 8, "droptail", 7)
        assert to_jsonable(a) == to_jsonable(b)


class TestInvariants:
    def test_fairq_cell_passes_runtime_invariants(self, monkeypatch):
        # Queue conservation (enqueued == dequeued + evicted + resident)
        # is checked by the InvariantMonitor after every event when
        # REPRO_CHECK_INVARIANTS=1; LQD evictions must keep it balanced.
        monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "1")
        case = run_matrix_point(
            tiny_params(n_senders=4), "incast", 8, "fairq", 3
        )
        assert case.completed == case.offered


class TestBackendEquivalence:
    """One matrix grid point is byte-identical across every backend."""

    @pytest.fixture(scope="class")
    def reference(self, tmp_path_factory):
        return self._sweep("serial", tmp_path_factory.mktemp("mx-ref"))

    @staticmethod
    def _sweep(backend, tmp_path):
        experiment = registry.get("matrix")
        params = experiment.make_params(
            "quick",
            protocol="tinybuffer",
            scenarios=("incast",),
            buffers=(8,),
            qdiscs=("droptail", "fairq"),
            **{k: v for k, v in TINY.items() if k not in ("load_blocks",)},
        )
        journal = tmp_path / f"{backend}.jsonl"
        runner = SweepRunner(
            jobs=2,
            cache=None,
            backend=backend,
            checkpoint=SweepCheckpoint(journal),
        )
        payload = runner.run(experiment, params, seed=11)
        lines = sorted(
            line
            for line in journal.read_text().splitlines()
            if line and '"result"' in line
        )
        return payload, lines, runner.last_stats

    @pytest.mark.parametrize("backend", ["process", "shm"])
    def test_payloads_and_journals_identical(self, backend, reference, tmp_path):
        ref_payload, ref_journal, _ = reference
        payload, journal, stats = self._sweep(backend, tmp_path)
        assert to_jsonable(payload) == to_jsonable(ref_payload)
        assert journal == ref_journal
        assert stats.backend == backend
        assert stats.failures == []
