"""Golden-trace regression tests for the simulation hot path.

Each TCP variant runs one canonical short scenario — three servers
sharing a tight bottleneck, sending trains separated by OFF gaps long
enough to trigger the gap detector — and the complete packet trace
(every delivery on the bottleneck and on the front-end's ACK path),
the executed-event count, and the final per-flow sender state are
hashed into a fixture under ``tests/golden/``.

The kernel docstring promises byte-identical determinism per seed, and
the performance work in ``sim/``, ``net/``, and ``tcp/`` leans on that
promise: any hot-path change that alters behavior — event ordering,
retransmission timing, window arithmetic — changes the hash and fails
these tests loudly.

To re-record after an *intended* behavior change::

    PYTHONPATH=src python -m pytest tests/test_golden_traces.py --regen-golden

and commit the updated fixtures together with the change that caused
them.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import pytest

from repro.experiments.scenarios import (
    ecn_threshold_for,
    packets_per_second,
    path_base_rtt,
)
from repro.metrics.tracing import PacketLogger
from repro.net.topology import build_star
from repro.sim.kernel import Simulator
from repro.tcp.factory import create_source, default_config
from repro.tcp.base import TcpSink

GOLDEN_DIR = Path(__file__).parent / "golden"

#: variants covered by a golden fixture: the base protocol, an ECN
#: protocol (different marking path), both gap-detecting variants
#: (TRIM probes, GIP restart), and the competitor-matrix pair (Tiny
#: Buffer's paced BDP clamp, T-RACKs' time-based loss detection).
PROTOCOLS = ("reno", "dctcp", "trim", "gip", "tinybuffer", "tracks")

# Scenario constants — changing any of these invalidates every fixture.
# The front-end link is half the access rate so three overlapping
# senders overload it: even the delay-limited variants lose their
# slow-start overshoot into the 8-packet buffer.
BANDWIDTH = 100e6
FRONTEND_BANDWIDTH = 50e6
DELAY = 100e-6
BUFFER_PKTS = 8
N_SERVERS = 3
TRAINS_PER_FLOW = 3
TRAIN_SEGMENTS = 60
TRAIN_GAP = 0.08  # well above smooth_RTT: triggers probe/restart cycles
HORIZON = 0.45


def run_golden_scenario(protocol: str):
    """The canonical scenario; returns (digest, metadata)."""
    sim = Simulator(check_invariants=False)
    star = build_star(
        sim,
        N_SERVERS,
        bandwidth_bps=BANDWIDTH,
        delay_s=DELAY,
        buffer_pkts=BUFFER_PKTS,
        frontend_bandwidth_bps=FRONTEND_BANDWIDTH,
        ecn_threshold_pkts=ecn_threshold_for(protocol, FRONTEND_BANDWIDTH),
    )
    config = default_config(protocol, min_rto=0.01, initial_rto=0.01)
    extras = {}
    if protocol == "trim":
        extras = dict(
            capacity_pps=packets_per_second(BANDWIDTH),
            base_rtt=path_base_rtt([(DELAY, BANDWIDTH)] * 2),
        )
    sources = []
    for i, server in enumerate(star.servers):
        source = create_source(
            protocol,
            sim,
            server,
            star.frontend.node_id,
            flow_id=i,
            config=config,
            **extras,
        )
        TcpSink(sim, star.frontend, flow_id=i)
        sources.append(source)

    data_log = PacketLogger(star.bottleneck, data_only=False)
    ack_log = PacketLogger(star.frontend.nic, data_only=False)

    for i, source in enumerate(sources):
        for k in range(TRAINS_PER_FLOW):
            sim.schedule_at(
                0.005 + i * 0.003 + k * TRAIN_GAP,
                lambda s=source: s.send_message(TRAIN_SEGMENTS),
            )
    sim.run(until=HORIZON)

    h = hashlib.sha256()
    for logger in (data_log, ack_log):
        for r in logger.records:
            h.update(
                f"{r.time!r}|{r.flow_id}|{r.seq}|{r.size_bytes}|"
                f"{int(r.is_retransmission)}\n".encode()
            )
    h.update(f"events={sim.events_executed}\n".encode())
    for s in sources:
        h.update(
            f"flow{s.flow_id}:{s.stats.segments_sent}:{s.stats.retransmits}:"
            f"{s.stats.timeouts}:{s.stats.fast_retransmits}:"
            f"{s.highest_ack}:{s.cwnd!r}:{s.ssthresh!r}\n".encode()
        )

    meta = {
        "protocol": protocol,
        "trace_sha256": h.hexdigest(),
        "n_records": len(data_log) + len(ack_log),
        "events_executed": sim.events_executed,
        "segments_sent": sum(s.stats.segments_sent for s in sources),
        "retransmits": sum(s.stats.retransmits for s in sources),
        "timeouts": sum(s.stats.timeouts for s in sources),
        "dropped_packets": star.network.total_dropped(),
    }
    if protocol == "trim":
        meta["probe_cycles"] = sum(
            s.probes_completed + s.probes_timed_out for s in sources
        )
        meta["delay_decreases"] = sum(s.delay_decreases for s in sources)
    if protocol == "tracks":
        meta["time_detected_losses"] = sum(
            s.time_detected_losses for s in sources
        )
    return meta


def _fixture_path(protocol: str) -> Path:
    return GOLDEN_DIR / f"{protocol}.json"


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_golden_trace(protocol, regen_golden):
    meta = run_golden_scenario(protocol)

    # The scenario must keep exercising the machinery it certifies: a
    # fixture that stops covering loss recovery (or TRIM's probes) would
    # silently stop guarding those paths.  TRIM itself avoids every drop
    # in this scenario — that is the paper's claim working as intended —
    # so its fixture certifies the probe and delay-decrease machinery
    # instead, while the other variants pin down loss recovery.
    if protocol == "trim":
        assert meta["probe_cycles"] > 0, "golden scenario stopped probing"
        assert meta["delay_decreases"] > 0, "golden scenario lost Eq.(3) coverage"
    else:
        assert meta["retransmits"] > 0, "golden scenario lost its loss coverage"
        assert meta["dropped_packets"] > 0
    if protocol == "tracks":
        # T-RACKs' whole point is recovering without dup-ACK counting;
        # a fixture where no loss is found by transmit-time comparison
        # would certify nothing about the RACK machinery.
        assert meta["time_detected_losses"] > 0, (
            "golden scenario stopped exercising time-based detection"
        )

    path = _fixture_path(protocol)
    if regen_golden:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(json.dumps(meta, indent=2, sort_keys=True) + "\n")
        return
    if not path.exists():
        pytest.fail(
            f"missing golden fixture {path}; record it with "
            "'python -m pytest tests/test_golden_traces.py --regen-golden' "
            "and commit the result"
        )
    expected = json.loads(path.read_text())
    assert meta["trace_sha256"] == expected["trace_sha256"], (
        f"{protocol}: the packet trace diverged from the recorded golden "
        f"fixture (got {meta} vs recorded {expected}). If this behavior "
        "change is intended, re-record with --regen-golden; otherwise a "
        "hot-path 'optimization' altered simulation behavior."
    )
    assert meta == expected


@pytest.mark.parametrize("protocol", PROTOCOLS)
def test_golden_scenario_is_deterministic(protocol):
    """The scenario itself must be a pure function of its constants."""
    assert run_golden_scenario(protocol) == run_golden_scenario(protocol)
