"""Trace-replay format: byte-exact round trips and strict validation."""

import json

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.http.openloop import (
    MmppArrivals,
    PoissonArrivals,
    SessionConfig,
    check_trace,
    compile_schedule,
    load_trace,
    trace_rows,
    write_trace,
)

SEEDS = st.integers(min_value=0, max_value=2**32 - 1)


class TestRoundTrip:
    @settings(
        max_examples=50,
        deadline=None,
        # Each example writes to seed-unique filenames, so reusing the
        # function-scoped tmp_path across examples is safe.
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(seed=SEEDS)
    def test_property_export_reload_reproduces_schedule(self, seed, tmp_path):
        """Replay of an exported trace is byte-for-byte the original:
        same requests, and re-exporting writes identical bytes."""
        schedule = compile_schedule(
            MmppArrivals(rate_on=300.0, rate_off=20.0, mean_on=0.05, mean_off=0.2),
            SessionConfig(mean_requests=2.0, think_time_s=0.01),
            seed=seed,
            horizon=0.5,
        )
        first = write_trace(schedule, tmp_path / f"trace-{seed}.jsonl")
        reloaded = load_trace(first, horizon=schedule.horizon)
        assert reloaded.requests == schedule.requests
        assert reloaded.horizon == schedule.horizon
        second = write_trace(reloaded, tmp_path / f"again-{seed}.jsonl")
        assert second.read_bytes() == first.read_bytes()

    def test_check_trace_counts_rows(self, tmp_path):
        schedule = compile_schedule(
            PoissonArrivals(60.0), SessionConfig(), seed=1, horizon=0.5
        )
        path = write_trace(schedule, tmp_path / "trace.jsonl")
        assert check_trace(path) == len(schedule)

    def test_trace_rows_are_flat_tuples(self):
        schedule = compile_schedule(
            PoissonArrivals(60.0), SessionConfig(), seed=2, horizon=0.2
        )
        rows = trace_rows(schedule)
        assert len(rows) == len(schedule)
        for row, request in zip(rows, schedule):
            assert row == {
                "t": request.time,
                "session": request.session,
                "size": request.size_bytes,
            }

    def test_inferred_horizon_covers_last_request(self, tmp_path):
        schedule = compile_schedule(
            PoissonArrivals(60.0), SessionConfig(), seed=3, horizon=0.5
        )
        path = write_trace(schedule, tmp_path / "trace.jsonl")
        reloaded = load_trace(path)  # no horizon given
        assert reloaded.horizon >= reloaded.requests[-1].time


class TestStrictValidation:
    def _write_lines(self, tmp_path, lines):
        path = tmp_path / "bad.jsonl"
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        return path

    def test_rejects_extra_keys(self, tmp_path):
        path = self._write_lines(
            tmp_path, ['{"session":0,"size":10,"t":0.1,"extra":1}']
        )
        with pytest.raises(ValueError, match="keys"):
            load_trace(path)

    def test_rejects_missing_keys(self, tmp_path):
        path = self._write_lines(tmp_path, ['{"session":0,"t":0.1}'])
        with pytest.raises(ValueError, match="keys"):
            load_trace(path)

    def test_rejects_telemetry_rows(self, tmp_path):
        """A --trace telemetry JSONL handed to --replay fails loudly."""
        path = self._write_lines(
            tmp_path,
            ['{"ch":"cwnd","cwnd":2.0,"flow":0,"ssthresh":64.0,"t":0.1}'],
        )
        with pytest.raises(ValueError):
            load_trace(path)

    def test_rejects_bad_json(self, tmp_path):
        path = self._write_lines(tmp_path, ["not json"])
        with pytest.raises(ValueError, match="bad JSONL"):
            load_trace(path)

    @pytest.mark.parametrize(
        "row",
        [
            {"session": 0, "size": 0, "t": 0.1},
            {"session": 0, "size": -5, "t": 0.1},
            {"session": 0, "size": 10, "t": -0.1},
            {"session": 0.5, "size": 10, "t": 0.1},
            {"session": True, "size": 10, "t": 0.1},
            {"session": 0, "size": True, "t": 0.1},
            {"session": 0, "size": "10", "t": 0.1},
            {"session": 0, "size": 10, "t": "0.1"},
        ],
    )
    def test_rejects_bad_values(self, tmp_path, row):
        path = self._write_lines(tmp_path, [json.dumps(row)])
        with pytest.raises(ValueError):
            load_trace(path)

    def test_check_trace_rejects_non_canonical_form(self, tmp_path):
        # Valid row, but keys unsorted / whitespace present.
        path = self._write_lines(tmp_path, ['{"t": 0.1, "session": 0, "size": 10}'])
        with pytest.raises(ValueError, match="canonical"):
            check_trace(path)

    def test_check_trace_rejects_decreasing_times(self, tmp_path):
        path = self._write_lines(
            tmp_path,
            [
                '{"session":0,"size":10,"t":0.5}',
                '{"session":1,"size":10,"t":0.2}',
            ],
        )
        with pytest.raises(ValueError, match="decrease"):
            check_trace(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = self._write_lines(
            tmp_path, ['{"session":0,"size":10,"t":0.1}', ""]
        )
        assert len(load_trace(path)) == 1
