"""End-to-end RED: a TCP flow through a RED bottleneck.

RED's early random drops should keep the standing queue well below the
physical buffer (unlike drop-tail's ceiling-riding saw-tooth) while the
flow still completes its transfer.
"""

import pytest

from repro.net.queues import RedQueue
from repro.tcp.base import TcpConfig
from tests.helpers import FAST, make_pair


def install_red(link, **kwargs):
    defaults = dict(
        capacity_pkts=link.queue.capacity_pkts,
        min_threshold=10,
        max_threshold=30,
        max_probability=0.1,
        mean_tx_time=1460 * 8 / link.bandwidth_bps,
        seed=3,
    )
    defaults.update(kwargs)
    link.queue = RedQueue(**defaults)
    return link.queue


class TestRedEndToEnd:
    def test_transfer_completes_through_red(self):
        sim, star, source, sink = make_pair(
            "reno", config=TcpConfig(**FAST), frontend_bandwidth=200e6
        )
        install_red(star.bottleneck)
        source.send_message(2000)
        sim.run(until=2.0)
        assert sink.next_expected == 2000

    def test_red_keeps_queue_below_droptail(self):
        def run(use_red):
            sim, star, source, _sink = make_pair(
                "reno", config=TcpConfig(**FAST), frontend_bandwidth=200e6
            )
            if use_red:
                install_red(star.bottleneck)
            source.send_message(50000)
            samples = []

            def probe():
                samples.append(star.bottleneck.backlog_pkts)
                if sim.now < 0.5:
                    sim.schedule(1e-3, probe)

            sim.schedule_at(0.1, probe)
            sim.run(until=0.5)
            return sum(samples) / len(samples)

        red_queue = run(use_red=True)
        droptail_queue = run(use_red=False)
        assert red_queue < droptail_queue * 0.8

    def test_red_produces_early_drops(self):
        # Warm-started sender: RED's slow EWMA cannot catch a slow-start
        # spike (true of real RED), so steady-state growth is the test.
        config = TcpConfig(initial_ssthresh=16, **FAST)
        sim, star, source, _sink = make_pair(
            "reno", config=config, frontend_bandwidth=200e6
        )
        queue = install_red(star.bottleneck)
        source.send_message(20000)
        sim.run(until=0.5)
        assert queue.stats.dropped > 0
        # Early drops: the queue never had to reach the physical limit.
        assert queue.stats.peak_length < queue.capacity_pkts

    def test_red_ecn_mode_with_dctcp(self):
        from repro.tcp.factory import default_config

        sim, star, source, sink = make_pair(
            "dctcp",
            config=default_config("dctcp", initial_ssthresh=16, **FAST),
            frontend_bandwidth=200e6,
        )
        queue = install_red(star.bottleneck, ecn_mode=True)
        source.send_message(5000)
        sim.run(until=2.0)
        assert sink.next_expected == 5000
        assert queue.stats.marked > 0
        assert source.stats.timeouts == 0
